#include "core/botnet.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "crypto/elligator_sim.hpp"
#include "crypto/sha1.hpp"
#include "graph/generators.hpp"

namespace onion::core {

// ====================================================================
// Bot
// ====================================================================

Bot::Bot(Botnet& net, std::uint32_t id, Bytes kb, BotConfig config)
    : net_(net),
      id_(id),
      kb_(std::move(kb)),
      config_(config),
      rng_(net.rng().next_u64()) {
  endpoint_ = net_.tor().create_endpoint();
  current_period_ = net_.current_period();
  service_key_ = crypto::rotated_service_key(net_.master().public_key(),
                                             kb_, current_period_);
  address_ = tor::OnionAddress::from_public_key(service_key_.pub);
  publish_current_address();
  schedule_heartbeat();
  schedule_non_share();
  schedule_rotation();
  stage_ = Stage::Waiting;
}

void Bot::publish_current_address() {
  net_.tor().publish_service(
      endpoint_, service_key_,
      [this](BytesView request, const tor::OnionAddress&) -> Bytes {
        if (!alive_) return {};
        return handle_request(request);
      });
}

void Bot::send(const tor::OnionAddress& to, Bytes message,
               tor::ConnectCallback callback) {
  if (!callback) callback = [](const tor::ConnectResult&) {};
  net_.tor().connect_and_send(endpoint_, to, std::move(message),
                              std::move(callback));
}

Bytes Bot::handle_request(BytesView request) {
  try {
    switch (peek_kind(request)) {
      case MessageKind::PeerRequest:
        return on_peer_request(parse_peer_request(request));
      case MessageKind::PeerDrop:
        on_peer_drop(parse_peer_drop(request));
        return encode_ping();
      case MessageKind::NoNShare:
        on_non_share(parse_non_share(request));
        return encode_ping();
      case MessageKind::AddressChange:
        on_address_change(parse_address_change(request));
        return encode_ping();
      case MessageKind::Ping:
        return encode_ping();
      case MessageKind::Broadcast:
        return on_broadcast(request);
      case MessageKind::DirectCommand:
        return on_direct_command(request);
      case MessageKind::Probe:
        // Basic bots acknowledge probes; SuperOnion hosts (the
        // graph-level superonion/super_network model) add semantics.
        return encode_ping();
      case MessageKind::ProbeChallenge:
        return on_probe_challenge(request);
    }
  } catch (const WireError&) {
    // Hostile or corrupt input: acknowledge blandly, reveal nothing.
  }
  return encode_ping();
}

Bytes Bot::on_peer_request(const PeerRequestMsg& m) {
  PeerReplyMsg reply;
  reply.declared_degree = static_cast<std::uint16_t>(degree());

  bool accepted = false;
  if (m.from == address_) {
    accepted = false;  // self-peering is meaningless
  } else if (peers_.count(m.from) > 0) {
    accepted = true;  // refresh
  } else if (degree() < config_.dmax) {
    accepted = true;
  } else {
    // Full: evict the highest-declared-degree peer iff the requester
    // undercuts it (the acceptance rule SOAP exploits; Figure 7 step 4).
    auto victim = peers_.end();
    std::uint16_t worst = 0;
    for (auto it = peers_.begin(); it != peers_.end(); ++it) {
      if (it->second.declared_degree >= worst) {
        worst = it->second.declared_degree;
        victim = it;
      }
    }
    if (victim != peers_.end() && m.declared_degree < worst) {
      const tor::OnionAddress dropped = victim->first;
      peers_.erase(victim);
      send(dropped, encode_peer_drop(PeerDropMsg{address_}));
      accepted = true;
    }
  }

  if (accepted) {
    const bool was_new = peers_.count(m.from) == 0;
    PeerInfo& info = peers_[m.from];
    info.declared_degree = m.declared_degree;
    info.last_seen = net_.simulator().now();
    info.failed_pings = 0;
    // Share our neighbor list (minus the requester): NoN bootstrap.
    for (const auto& [addr, unused] : peers_)
      if (addr != m.from) reply.neighbors.push_back(addr);
    if (was_new) challenge_new_peer(m.from);
  }
  reply.accepted = accepted;
  return encode_peer_reply(reply);
}

void Bot::on_peer_drop(const PeerDropMsg& m) {
  peers_.erase(m.from);
  refill_if_needed();
}

void Bot::on_non_share(const NoNShareMsg& m) {
  const auto it = peers_.find(m.from);
  if (it == peers_.end()) return;  // not a peer: ignore strangers
  it->second.neighbors = m.neighbors;
  it->second.declared_degree = m.declared_degree;
  it->second.last_seen = net_.simulator().now();
  it->second.failed_pings = 0;
}

void Bot::on_address_change(const AddressChangeMsg& m) {
  const auto it = peers_.find(m.old_address);
  if (it == peers_.end()) return;
  PeerInfo info = std::move(it->second);
  peers_.erase(it);
  info.last_seen = net_.simulator().now();
  info.failed_pings = 0;
  peers_[m.new_address] = std::move(info);
}

Bytes Bot::on_broadcast(BytesView message) {
  const Bytes envelope = parse_broadcast(message);
  const crypto::Sha1Digest digest = crypto::Sha1::hash(envelope);
  if (!seen_broadcasts_.insert(digest).second) return encode_ping();

  // Attempt to read it under every key this bot holds: the botnet-wide
  // key plus any installed subgroup keys. An envelope for a key the bot
  // lacks (or garbage) simply fails authentication and is still relayed
  // — a relaying bot cannot distinguish source, destination, or nature
  // (paper §IV-D).
  std::optional<Bytes> opened =
      crypto::uniform_decode(net_.master().group_key(), envelope);
  for (auto it = group_keys_.begin();
       !opened && it != group_keys_.end(); ++it) {
    opened = crypto::uniform_decode(it->second, envelope);
  }
  if (opened) {
    try {
      const SignedCommand cmd = SignedCommand::parse(*opened);
      if (cmd.verify(net_.master().public_key(), net_.simulator().now(),
                     config_.command_max_age) &&
          fresh_nonce(cmd.command.nonce)) {
        execute(cmd);
      }
    } catch (const WireError&) {
    }
  }

  // Flood onward.
  const Bytes onward = encode_broadcast(envelope);
  for (const auto& [addr, unused] : peers_) send(addr, onward);
  ++broadcasts_relayed_;
  return encode_ping();
}

Bytes Bot::on_direct_command(BytesView message) {
  Writer ack;
  try {
    const SignedCommand cmd = parse_direct_command(message);
    if (cmd.verify(net_.master().public_key(), net_.simulator().now(),
                   config_.command_max_age) &&
        fresh_nonce(cmd.command.nonce)) {
      execute(cmd);
      ack.u8(1);
      return ack.take();
    }
  } catch (const WireError&) {
  }
  ack.u8(0);
  return ack.take();
}

Bytes Bot::on_probe_challenge(BytesView message) {
  // Decode the challenge envelope under the group key and answer the
  // keyed MAC. Anything we cannot read gets a bland ping — exactly what
  // a clone would be forced to send, so the reply-shape itself does not
  // advertise membership to a non-member prober.
  const Bytes envelope = parse_probe_challenge(message);
  if (const auto nonce =
          crypto::uniform_decode(net_.master().group_key(), envelope)) {
    return probe_challenge_answer(net_.master().group_key(), *nonce);
  }
  return encode_ping();
}

bool Bot::fresh_nonce(std::uint64_t nonce) {
  return seen_nonces_.insert(nonce).second;
}

void Bot::execute(const SignedCommand& cmd) {
  stage_ = Stage::Executing;
  executed_.push_back(ExecutedCommand{cmd.command.type,
                                      cmd.command.argument,
                                      net_.simulator().now(),
                                      cmd.token.has_value()});
  if (cmd.command.type == CommandType::InstallGroupKey) {
    // Argument "<group-id-hex>:<key-hex>"; malformed arguments are
    // dropped silently (never trust input, even master-signed).
    const std::string& arg = cmd.command.argument;
    const std::size_t colon = arg.find(':');
    if (colon != std::string::npos) {
      try {
        const Bytes gid_bytes = from_hex(arg.substr(0, colon));
        const Bytes key = from_hex(arg.substr(colon + 1));
        if (gid_bytes.size() == 8 && !key.empty()) {
          std::uint64_t gid = 0;
          for (const std::uint8_t b : gid_bytes) gid = gid << 8 | b;
          group_keys_[gid] = key;
        }
      } catch (const std::invalid_argument&) {
      }
    }
  }
  // Simulated work; back to Waiting afterwards.
  net_.simulator().schedule_in(1 * kSecond, [this] {
    if (alive_ && stage_ == Stage::Executing) stage_ = Stage::Waiting;
  });
}

void Bot::schedule_heartbeat() {
  // Per-bot phase offset so the whole botnet does not ping in lockstep.
  const SimDuration offset = rng_.uniform(config_.heartbeat_interval);
  net_.simulator().schedule_in(config_.heartbeat_interval + offset -
                                   config_.heartbeat_interval / 2,
                               [this] { heartbeat(); });
}

void Bot::heartbeat() {
  if (!alive_) return;
  std::vector<tor::OnionAddress> targets;
  targets.reserve(peers_.size());
  for (const auto& [addr, unused] : peers_) targets.push_back(addr);
  for (const auto& addr : targets) {
    if (config_.probe_peers) {
      // §VII-A probing: keyed challenge; a wrong answer is a clone and
      // is dropped immediately (not merely after dead-ping strikes).
      Bytes nonce(16);
      for (auto& b : nonce) b = static_cast<std::uint8_t>(rng_.next_u64());
      const Bytes envelope = crypto::uniform_encode(
          net_.master().group_key(), nonce, rng_);
      const Bytes expected =
          probe_challenge_answer(net_.master().group_key(), nonce);
      send(addr, encode_probe_challenge(envelope),
           [this, addr, expected](const tor::ConnectResult& r) {
             if (!alive_) return;
             const auto it = peers_.find(addr);
             if (it == peers_.end()) return;
             if (r.ok && r.reply == expected) {
               it->second.failed_pings = 0;
               it->second.last_seen = net_.simulator().now();
             } else if (r.ok) {
               // Reachable but cannot answer: a clone. Forget it now.
               peers_.erase(it);
               refill_if_needed();
             } else if (++it->second.failed_pings >=
                        kPingFailuresForDead) {
               peer_died(addr);
             }
           });
      continue;
    }
    send(addr, encode_ping(), [this, addr](const tor::ConnectResult& r) {
      if (!alive_) return;
      const auto it = peers_.find(addr);
      if (it == peers_.end()) return;
      if (r.ok) {
        it->second.failed_pings = 0;
        it->second.last_seen = net_.simulator().now();
      } else if (++it->second.failed_pings >= kPingFailuresForDead) {
        peer_died(addr);
      }
    });
  }
  net_.simulator().schedule_in(config_.heartbeat_interval,
                               [this] { heartbeat(); });
}

void Bot::challenge_new_peer(const tor::OnionAddress& addr) {
  if (!config_.probe_peers) return;
  Bytes nonce(16);
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng_.next_u64());
  const Bytes envelope =
      crypto::uniform_encode(net_.master().group_key(), nonce, rng_);
  const Bytes expected =
      probe_challenge_answer(net_.master().group_key(), nonce);
  send(addr, encode_probe_challenge(envelope),
       [this, addr, expected](const tor::ConnectResult& r) {
         if (!alive_) return;
         if (r.ok && r.reply == expected) return;  // verified honest
         // Wrong answer or unreachable: never adopt.
         if (peers_.erase(addr) > 0) refill_if_needed();
       });
}

void Bot::schedule_non_share() {
  const SimDuration offset = rng_.uniform(config_.non_share_interval);
  net_.simulator().schedule_in(offset + 1, [this] { share_non(); });
}

void Bot::share_non() {
  if (!alive_) return;
  NoNShareMsg msg;
  msg.from = address_;
  msg.declared_degree = static_cast<std::uint16_t>(degree());
  for (const auto& [addr, unused] : peers_) msg.neighbors.push_back(addr);
  const Bytes bytes = encode_non_share(msg);
  for (const auto& addr : msg.neighbors) send(addr, bytes);
  net_.simulator().schedule_in(config_.non_share_interval,
                               [this] { share_non(); });
}

void Bot::schedule_rotation() {
  const SimTime next_boundary =
      (current_period_ + 1) * config_.rotation_period;
  const SimTime now = net_.simulator().now();
  const SimDuration wait = next_boundary > now ? next_boundary - now : 1;
  net_.simulator().schedule_in(wait, [this] { rotate_address(); });
}

void Bot::rotate_address() {
  if (!alive_) return;
  const std::uint64_t new_period = net_.current_period();
  if (new_period == current_period_) {  // boundary jitter; re-arm
    schedule_rotation();
    return;
  }
  const tor::OnionAddress old_address = address_;
  current_period_ = new_period;
  service_key_ = crypto::rotated_service_key(net_.master().public_key(),
                                             kb_, current_period_);
  address_ = tor::OnionAddress::from_public_key(service_key_.pub);
  publish_current_address();

  // Tell current peers, then retire the old identity after a grace
  // period so in-flight connections complete ("Forgetting", §IV-C).
  const Bytes notice = encode_address_change(
      AddressChangeMsg{old_address, address_});
  for (const auto& [addr, unused] : peers_) send(addr, notice);
  net_.simulator().schedule_in(30 * kSecond, [this, old_address] {
    net_.tor().unpublish_service(endpoint_, old_address);
  });
  schedule_rotation();
}

void Bot::peer_died(const tor::OnionAddress& dead) {
  const auto it = peers_.find(dead);
  if (it == peers_.end()) return;
  // DDSR repair: reconnect with the dead peer's other neighbors, known
  // through NoN exchange (paper §IV-C "Repairing").
  const std::vector<tor::OnionAddress> former = it->second.neighbors;
  peers_.erase(it);

  PeerRequestMsg req;
  req.from = address_;
  req.declared_degree = static_cast<std::uint16_t>(degree());
  for (const auto& candidate : former) {
    if (candidate == address_ || candidate == dead) continue;
    if (peers_.count(candidate) > 0) continue;
    send(candidate, encode_peer_request(req),
         [this, candidate](const tor::ConnectResult& r) {
           if (!alive_ || !r.ok) return;
           try {
             const PeerReplyMsg reply = parse_peer_reply(r.reply);
             if (!reply.accepted) return;
             PeerInfo& info = peers_[candidate];
             info.declared_degree = reply.declared_degree;
             info.last_seen = net_.simulator().now();
             info.neighbors = reply.neighbors;
             challenge_new_peer(candidate);
             prune_if_needed();
           } catch (const WireError&) {
           }
         });
  }
  refill_if_needed();
}

void Bot::prune_if_needed() {
  // Pruning (paper §IV-C): shed highest-declared-degree peers until back
  // inside the band.
  while (degree() > config_.dmax) {
    auto victim = peers_.begin();
    for (auto it = peers_.begin(); it != peers_.end(); ++it)
      if (it->second.declared_degree > victim->second.declared_degree)
        victim = it;
    const tor::OnionAddress dropped = victim->first;
    peers_.erase(victim);
    send(dropped, encode_peer_drop(PeerDropMsg{address_}));
  }
}

void Bot::refill_if_needed() {
  if (degree() >= config_.dmin) return;
  // Refill from NoN: candidates are neighbors of current peers.
  std::vector<tor::OnionAddress> candidates;
  for (const auto& [addr, info] : peers_) {
    for (const auto& nn : info.neighbors) {
      if (nn == address_ || peers_.count(nn) > 0) continue;
      if (std::find(candidates.begin(), candidates.end(), nn) ==
          candidates.end())
        candidates.push_back(nn);
    }
  }
  rng_.shuffle(candidates);
  const std::size_t want = config_.dmin - degree();
  PeerRequestMsg req;
  req.from = address_;
  req.declared_degree = static_cast<std::uint16_t>(degree());
  for (std::size_t i = 0; i < candidates.size() && i < want; ++i) {
    const tor::OnionAddress candidate = candidates[i];
    send(candidate, encode_peer_request(req),
         [this, candidate](const tor::ConnectResult& r) {
           if (!alive_ || !r.ok) return;
           try {
             const PeerReplyMsg reply = parse_peer_reply(r.reply);
             if (!reply.accepted) return;
             PeerInfo& info = peers_[candidate];
             info.declared_degree = reply.declared_degree;
             info.last_seen = net_.simulator().now();
             info.neighbors = reply.neighbors;
             challenge_new_peer(candidate);
           } catch (const WireError&) {
           }
         });
  }
}

void Bot::rally(std::vector<tor::OnionAddress> bootstrap) {
  stage_ = Stage::Rally;
  // Shared lead queue walked asynchronously: ask each lead to peer; an
  // accepting lead's neighbor list extends the queue (hotlist behavior).
  auto leads = std::make_shared<std::deque<tor::OnionAddress>>(
      bootstrap.begin(), bootstrap.end());
  auto tried = std::make_shared<std::set<tor::OnionAddress>>();
  auto step = std::make_shared<std::function<void()>>();
  // The handler must reach itself to continue the walk, but capturing the
  // shared_ptr would make the closure own itself — a reference cycle that
  // leaks the whole walk state. Capture weakly here; the pending send()
  // callback below holds the strong reference that keeps the walk alive.
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [this, leads, tried, weak_step] {
    if (!alive_) return;
    if (degree() >= config_.dmin || leads->empty()) {
      if (degree() > 0) stage_ = Stage::Waiting;
      return;
    }
    const auto self = weak_step.lock();
    if (!self) return;
    const tor::OnionAddress lead = leads->front();
    leads->pop_front();
    if (lead == address_ || peers_.count(lead) > 0 ||
        !tried->insert(lead).second) {
      (*self)();
      return;
    }
    PeerRequestMsg req;
    req.from = address_;
    req.declared_degree = static_cast<std::uint16_t>(degree());
    send(lead, encode_peer_request(req),
         [this, lead, leads, self](const tor::ConnectResult& r) {
           if (!alive_) return;
           if (r.ok) {
             try {
               const PeerReplyMsg reply = parse_peer_reply(r.reply);
               if (reply.accepted) {
                 PeerInfo& info = peers_[lead];
                 info.declared_degree = reply.declared_degree;
                 info.last_seen = net_.simulator().now();
                 info.neighbors = reply.neighbors;
                 challenge_new_peer(lead);
                 for (const auto& n : reply.neighbors)
                   leads->push_back(n);
               }
             } catch (const WireError&) {
             }
           }
           (*self)();
         });
  };
  (*step)();
}

// ====================================================================
// Botmaster
// ====================================================================

Botmaster::Botmaster(Botnet& net, Rng& rng) : net_(net), rng_(rng) {
  key_ = crypto::rsa_generate(rng_, /*nominal_bits=*/2048);
  group_key_.resize(32);
  for (auto& b : group_key_) b = static_cast<std::uint8_t>(rng_.next_u64());
  endpoint_ = net_.tor().create_endpoint();
}

void Botmaster::register_bot(std::uint32_t bot_id, BytesView kb) {
  // In the field this is {K_B}_{PK_CC} sent at rally time; the hybrid
  // encryption path is exercised in tests (crypto::rsa_hybrid_*).
  registry_[bot_id] = Bytes(kb.begin(), kb.end());
}

tor::OnionAddress Botmaster::derive_address(std::uint32_t bot_id,
                                            std::uint64_t period) const {
  const auto it = registry_.find(bot_id);
  ONION_EXPECTS(it != registry_.end());
  const crypto::RsaKeyPair key =
      crypto::rotated_service_key(key_.pub, it->second, period);
  return tor::OnionAddress::from_public_key(key.pub);
}

void Botmaster::inject(Bytes message, std::size_t fanout) {
  std::vector<std::uint32_t> alive;
  for (std::size_t i = 0; i < net_.num_bots(); ++i)
    if (net_.bot(i).alive()) alive.push_back(static_cast<std::uint32_t>(i));
  if (alive.empty()) return;
  rng_.shuffle(alive);
  const std::size_t n = std::min(fanout, alive.size());
  for (std::size_t i = 0; i < n; ++i) {
    const tor::OnionAddress addr =
        derive_address(alive[i], net_.current_period());
    net_.tor().connect_and_send(endpoint_, addr, message,
                                [](const tor::ConnectResult&) {});
  }
}

void Botmaster::broadcast(Command cmd, std::size_t fanout) {
  cmd.issued_at = net_.simulator().now();
  cmd.nonce = next_nonce();
  const SignedCommand signed_cmd = sign_command(key_, std::move(cmd));
  const Bytes envelope =
      crypto::uniform_encode(group_key_, signed_cmd.serialize(), rng_);
  inject(encode_broadcast(envelope), fanout);
}

void Botmaster::broadcast_rented(const crypto::RsaKeyPair& renter,
                                 const RentalToken& token, Command cmd,
                                 std::size_t fanout) {
  cmd.issued_at = net_.simulator().now();
  cmd.nonce = next_nonce();
  const SignedCommand signed_cmd =
      sign_rented_command(renter, token, std::move(cmd));
  const Bytes envelope =
      crypto::uniform_encode(group_key_, signed_cmd.serialize(), rng_);
  inject(encode_broadcast(envelope), fanout);
}

void Botmaster::direct(std::uint32_t bot_id, Command cmd,
                       tor::ConnectCallback callback) {
  cmd.issued_at = net_.simulator().now();
  cmd.nonce = next_nonce();
  const SignedCommand signed_cmd = sign_command(key_, std::move(cmd));
  if (!callback) callback = [](const tor::ConnectResult&) {};
  const tor::OnionAddress addr =
      derive_address(bot_id, net_.current_period());
  net_.tor().connect_and_send(endpoint_, addr,
                              encode_direct_command(signed_cmd),
                              std::move(callback));
}

RentalToken Botmaster::rent(const crypto::RsaPublicKey& renter,
                            SimTime expires_at,
                            std::vector<CommandType> whitelist) const {
  return issue_rental_token(key_, renter, expires_at, std::move(whitelist));
}

std::uint64_t Botmaster::create_group(
    const std::vector<std::uint32_t>& members) {
  Group group;
  group.key.resize(32);
  for (auto& b : group.key) b = static_cast<std::uint8_t>(rng_.next_u64());
  group.members = members;
  const std::uint64_t gid = rng_.next_u64();
  groups_[gid] = group;

  // Key delivery rides the ordinary signed direct-command channel: the
  // Tor rendezvous link to each member's hidden service is end-to-end
  // encrypted, so the key bytes are confidential in transit.
  const std::string argument = to_hex(be64(gid)) + ":" + to_hex(group.key);
  for (const std::uint32_t member : members) {
    Command cmd;
    cmd.type = CommandType::InstallGroupKey;
    cmd.argument = argument;
    direct(member, std::move(cmd));
  }
  return gid;
}

void Botmaster::broadcast_group(std::uint64_t group, Command cmd,
                                std::size_t fanout) {
  const auto it = groups_.find(group);
  ONION_EXPECTS(it != groups_.end());
  cmd.issued_at = net_.simulator().now();
  cmd.nonce = next_nonce();
  const SignedCommand signed_cmd = sign_command(key_, std::move(cmd));
  const Bytes envelope =
      crypto::uniform_encode(it->second.key, signed_cmd.serialize(), rng_);
  inject(encode_broadcast(envelope), fanout);
}

const std::vector<std::uint32_t>& Botmaster::group_members(
    std::uint64_t group) const {
  const auto it = groups_.find(group);
  ONION_EXPECTS(it != groups_.end());
  return it->second.members;
}

// ====================================================================
// Botnet
// ====================================================================

Botnet::Botnet(Params params)
    : params_(params),
      rng_(params.seed),
      sim_(),
      tor_(sim_, params.tor, rng_.next_u64()) {
  master_ = std::make_unique<Botmaster>(*this, rng_);

  for (std::size_t i = 0; i < params_.num_bots; ++i) {
    Bytes kb(32);
    for (auto& b : kb) b = static_cast<std::uint8_t>(rng_.next_u64());
    master_->register_bot(static_cast<std::uint32_t>(i), kb);
    bots_.push_back(std::make_unique<Bot>(
        *this, static_cast<std::uint32_t>(i), std::move(kb), params_.bot));
  }

  // Pre-rallied overlay: a random k-regular graph, materialized into the
  // bots' peer tables (live rally is exercised via Bot::rally()).
  if (params_.num_bots > params_.initial_degree + 1 &&
      params_.initial_degree > 0) {
    std::size_t k = params_.initial_degree;
    if ((params_.num_bots * k) % 2 != 0) ++k;  // parity fix
    const graph::Graph topology =
        graph::random_regular(params_.num_bots, k, rng_);
    for (graph::NodeId u = 0; u < params_.num_bots; ++u) {
      for (const graph::NodeId v : topology.neighbors(u)) {
        if (u >= v) continue;
        Bot& a = *bots_[u];
        Bot& b = *bots_[v];
        PeerInfo ai;
        ai.declared_degree = static_cast<std::uint16_t>(k);
        a.peers_[b.address_] = ai;
        b.peers_[a.address_] = ai;
      }
    }
    // Seed NoN knowledge so the first repairs have material before the
    // first periodic NoN exchange fires.
    for (auto& bot : bots_) {
      for (auto& [addr, info] : bot->peers_) {
        const auto peer_id = bot_by_address(addr);
        if (!peer_id) continue;
        const Bot& peer = *bots_[*peer_id];
        for (const auto& [paddr, punused] : peer.peers_)
          if (paddr != bot->address_) info.neighbors.push_back(paddr);
        info.declared_degree =
            static_cast<std::uint16_t>(peer.peers_.size());
      }
    }
  }
}

std::size_t Botnet::num_alive() const {
  std::size_t n = 0;
  for (const auto& bot : bots_)
    if (bot->alive()) ++n;
  return n;
}

void Botnet::kill_bot(std::size_t i) {
  Bot& bot = *bots_.at(i);
  if (!bot.alive_) return;
  bot.alive_ = false;
  tor_.unpublish_service(bot.endpoint_, bot.address_);
}

Bot& Botnet::infect_new_bot() {
  const auto id = static_cast<std::uint32_t>(bots_.size());
  Bytes kb(32);
  for (auto& b : kb) b = static_cast<std::uint8_t>(rng_.next_u64());
  master_->register_bot(id, kb);
  bots_.push_back(
      std::make_unique<Bot>(*this, id, std::move(kb), params_.bot));
  return *bots_.back();
}

graph::Graph Botnet::overlay_snapshot() const {
  graph::Graph g(bots_.size());
  for (std::size_t i = 0; i < bots_.size(); ++i)
    if (!bots_[i]->alive()) g.remove_node(static_cast<graph::NodeId>(i));
  for (std::size_t i = 0; i < bots_.size(); ++i) {
    const Bot& a = *bots_[i];
    if (!a.alive()) continue;
    for (const auto& [addr, unused] : a.peers_) {
      const auto j = bot_by_address(addr);
      if (!j || !bots_[*j]->alive()) continue;
      // Mutual entries only: both sides consider the link live.
      if (bots_[*j]->peers_.count(a.address_) > 0)
        g.add_edge(static_cast<graph::NodeId>(i),
                   static_cast<graph::NodeId>(*j));
    }
  }
  return g;
}

std::optional<std::uint32_t> Botnet::bot_by_address(
    const tor::OnionAddress& address) const {
  for (std::size_t i = 0; i < bots_.size(); ++i)
    if (bots_[i]->address_ == address)
      return static_cast<std::uint32_t>(i);
  return std::nullopt;
}

std::size_t Botnet::count_executed(CommandType type) const {
  std::size_t n = 0;
  for (const auto& bot : bots_)
    for (const auto& e : bot->executed())
      if (e.type == type) ++n;
  return n;
}

}  // namespace onion::core
