// Bootstrap / rally strategies (paper §IV-B). A newly infected bot must
// find existing members; the paper weighs four approaches and predicts
// OnionBots combine the first two:
//
//   Hardcoded peer list   the infector hands over a probability-p subset
//                         of its own peer list ("Each node in the
//                         original peer list will be included in the
//                         subset with probability p")
//   Hotlist (webcache)    bots query directory nodes for current peers;
//                         each bot knows only a subset of the servers
//   Random probing        infeasible: the space is 32^16 (see
//                         tor/address_cost.hpp)
//   Out-of-band (DHT)     peer lists stored under well-known keys in an
//                         external store (BitTorrent Mainline DHT,
//                         social networks)
//
// Each strategy exposes the same interface — produce leads for a
// recruit — plus the defender-side accounting the trade-off discussion
// turns on: what does an adversary learn by compromising an infector, a
// hotlist server, or by crawling the out-of-band store?
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "tor/onion_address.hpp"

namespace onion::core {

/// Leads handed to a recruit at rally time.
using LeadList = std::vector<tor::OnionAddress>;

/// --- 1. hardcoded peer list -------------------------------------------

/// Subset-of-infector's-peers handout: each entry of `infector_peers` is
/// included independently with probability `p`. Guarantees at least one
/// lead when the source list is non-empty (an empty handout would orphan
/// the recruit; the infector always shares something).
LeadList hardcoded_subset(const LeadList& infector_peers, double p,
                          Rng& rng);

/// --- 2. hotlist (webcache) ----------------------------------------------

/// A population of hotlist servers, each holding a rolling window of
/// member addresses. Bots know only `servers_per_bot` of them; a
/// defender who seizes a server learns exactly that server's window and
/// can stop it from answering.
class HotlistDirectory {
 public:
  struct Config {
    std::size_t servers = 8;
    /// Addresses a server retains (oldest evicted first).
    std::size_t window = 64;
    /// Servers each bot is given (its private subset).
    std::size_t servers_per_bot = 2;
  };

  HotlistDirectory(Config config, Rng& rng)
      : config_(config), rng_(rng), windows_(config.servers) {
    ONION_EXPECTS(config.servers > 0);
    ONION_EXPECTS(config.servers_per_bot <= config.servers);
  }

  /// A member announces its (current) address; lands on every server in
  /// its private subset.
  void announce(const tor::OnionAddress& address,
                const std::vector<std::size_t>& subset);

  /// Random private server subset for a new bot.
  std::vector<std::size_t> assign_subset();

  /// Queries the bot's subset; seized servers contribute nothing.
  LeadList query(const std::vector<std::size_t>& subset) const;

  /// Defender action: seize a server. Returns the window it held — the
  /// defender's intelligence haul.
  LeadList seize(std::size_t server);

  std::size_t num_servers() const { return config_.servers; }
  bool seized(std::size_t server) const { return seized_.count(server) > 0; }
  /// Addresses a defender has harvested across all seizures.
  const LeadList& harvested() const { return harvested_; }

 private:
  Config config_;
  Rng& rng_;
  std::vector<std::vector<tor::OnionAddress>> windows_;
  std::set<std::size_t> seized_;
  LeadList harvested_;
};

/// --- 4. out-of-band store (DHT) ------------------------------------------

/// Minimal Mainline-DHT-style rendezvous: members announce under a
/// shared, time-rotated key; recruits look the key up. The whole store
/// is public — the defender can run the same lookup, which is exactly
/// the exposure trade-off the paper flags for out-of-band channels.
class OutOfBandStore {
 public:
  /// Rendezvous key for a period (all bots derive it from shared secret
  /// material; modeled as an opaque integer).
  using Key = std::uint64_t;

  void announce(Key key, const tor::OnionAddress& address);

  /// All addresses under `key` (bots and defenders get the same view).
  LeadList lookup(Key key) const;

  /// Number of distinct keys ever used (crawler's work factor).
  std::size_t keys_used() const { return store_.size(); }

 private:
  std::map<Key, LeadList> store_;
};

/// --- exposure accounting ---------------------------------------------------

/// Fraction of `population` addresses a defender learns from a given
/// haul (dedup'd); the §IV-B trade-off in one number.
double exposure_fraction(const LeadList& haul,
                         const std::vector<tor::OnionAddress>& population);

}  // namespace onion::core
