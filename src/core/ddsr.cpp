#include "core/ddsr.hpp"

#include <algorithm>

namespace onion::core {

using graph::NodeId;

void DdsrEngine::remove_node_no_repair(NodeId u) {
  graph_.remove_node(u);
  ++stats_.nodes_removed;
}

void DdsrEngine::remove_node(NodeId u) {
  const std::vector<NodeId> former = graph_.neighbors(u);
  graph_.remove_node(u);
  ++stats_.nodes_removed;

  // Repairing: reconnect the hole.
  switch (policy_.repair) {
    case DdsrPolicy::Repair::PairwiseFull:
      repair_clique(former);
      break;
    case DdsrPolicy::Repair::RandomMatch: {
      std::vector<NodeId> shuffled = former;
      rng_.shuffle(shuffled);
      for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2)
        connect_edge(shuffled[i], shuffled[i + 1],
                     stats_.repair_edges_added);
      break;
    }
  }

  // Pruning: former neighbors above dmax shed edges; every node that lost
  // an edge (prune victims included) is a refill candidate.
  std::vector<NodeId> refill_candidates = former;
  if (policy_.prune) {
    for (const NodeId v : former) prune_node(v, refill_candidates);
  }

  if (policy_.refill) {
    for (const NodeId v : refill_candidates) refill_node(v);
  }
}

void DdsrEngine::repair_clique(const std::vector<NodeId>& former) {
  // Clique the dead node's former neighbors (paper rule). Without
  // pruning, degrees grow into the thousands (that growth *is* the
  // Figure 4c result), so membership tests use scratch bitmaps: cost per
  // deleted node is O(|former|^2 + sum of former degrees), with every
  // test O(1).
  if (former.size() < 2) return;
  const std::size_t cap = graph_.capacity();
  if (adjacent_.size() < cap) adjacent_.resize(cap, 0);
  for (std::size_t i = 0; i < former.size(); ++i) {
    const NodeId u = former[i];
    if (connect_) {
      // Charged path: the connector's peering policy can evict edges
      // anywhere in the graph (including u's own), so membership tests
      // go through the graph per request and no scratch bitmap state is
      // carried across its side effects. Healing is rare relative to
      // Figure-4-scale repair, so the O(deg) tests are affordable here.
      for (std::size_t j = i + 1; j < former.size(); ++j)
        connect_edge(u, former[j], stats_.repair_edges_added);
      continue;
    }
    // Mark u's existing neighbors, connect to every unmarked later
    // member, then unmark.
    for (const NodeId w : graph_.neighbors(u)) adjacent_[w] = 1;
    for (std::size_t j = i + 1; j < former.size(); ++j) {
      const NodeId v = former[j];
      if (adjacent_[v]) continue;
      graph_.add_edge_unchecked(u, v);
      ++stats_.repair_edges_added;
    }
    for (const NodeId w : graph_.neighbors(u)) adjacent_[w] = 0;
  }
}

bool DdsrEngine::connect_edge(NodeId a, NodeId b, std::uint64_t& counter) {
  if (!connect_) {
    if (!graph_.add_edge(a, b)) return false;  // duplicate: no-op
    ++counter;
    return true;
  }
  if (a == b || graph_.has_edge(a, b)) return false;
  if (!connect_(a, b)) {
    ++stats_.heal_requests_denied;
    return false;
  }
  ++counter;
  return true;
}

void DdsrEngine::prune_node(NodeId v, std::vector<NodeId>& lost_edge) {
  if (!graph_.alive(v)) return;
  while (graph_.degree(v) > policy_.dmax) {
    const auto& peers = graph_.neighbors(v);
    NodeId victim = graph::kInvalidNode;
    switch (policy_.victim) {
      case DdsrPolicy::Victim::HighestDegree: {
        // Highest-degree neighbor; ties broken uniformly (paper rule).
        std::size_t best = 0;
        std::size_t ties = 0;
        for (const NodeId p : peers) {
          const std::size_t d = graph_.degree(p);
          if (d > best) {
            best = d;
            victim = p;
            ties = 1;
          } else if (d == best && d > 0) {
            ++ties;
            if (rng_.uniform(ties) == 0) victim = p;
          }
        }
        break;
      }
      case DdsrPolicy::Victim::Random:
        victim = peers[static_cast<std::size_t>(rng_.uniform(peers.size()))];
        break;
    }
    if (victim == graph::kInvalidNode) break;
    graph_.remove_edge(v, victim);
    ++stats_.prune_edges_removed;
    lost_edge.push_back(victim);
  }
}

void DdsrEngine::refill_node(NodeId v) {
  // Work queue: refilling through a full acceptor evicts one of its
  // peers, which then sits below dmin itself and must be refilled in
  // turn. Dropping those cascade victims is how holes silently appear,
  // so they are re-enqueued here. A step guard bounds pathological
  // add/evict cycles (possible when dmin == dmax and ties break badly).
  std::vector<NodeId> pending{v};
  int guard = 0;
  while (!pending.empty() && guard < 512) {
    const NodeId u = pending.back();
    pending.pop_back();
    if (!graph_.alive(u)) continue;
    while (graph_.degree(u) < policy_.dmin && guard++ < 512) {
      // Candidates: alive neighbors-of-neighbors not already adjacent.
      // Nodes with spare capacity are preferred (a full node only
      // accepts by evicting — the bot-level acceptance rule).
      std::vector<NodeId> candidates;
      std::vector<NodeId> with_capacity;
      for (const NodeId n : graph_.neighbors(u)) {
        for (const NodeId nn : graph_.neighbors(n)) {
          if (nn == u || graph_.has_edge(u, nn)) continue;
          if (std::find(candidates.begin(), candidates.end(), nn) !=
              candidates.end())
            continue;
          candidates.push_back(nn);
          if (graph_.degree(nn) < policy_.dmax) with_capacity.push_back(nn);
        }
      }
      if (candidates.empty()) break;  // NoN exhausted; dmin is best-effort
      const auto& pool = with_capacity.empty() ? candidates : with_capacity;
      const NodeId pick =
          pool[static_cast<std::size_t>(rng_.uniform(pool.size()))];
      // A charged refill can be denied (PoW/rate limit); the node gives
      // up for now like OverlayNetwork::refill — a later repair or
      // defense round may retry. Uncharged adds never fail here
      // (candidates exclude existing edges).
      if (!connect_edge(u, pick, stats_.refill_edges_added)) break;
      // A full acceptor evicts its highest-degree neighbor, mirroring
      // Bot::on_peer_request; the victim is queued for its own refill.
      if (policy_.prune && graph_.degree(pick) > policy_.dmax) {
        std::vector<NodeId> lost;
        prune_node(pick, lost);
        for (const NodeId w : lost)
          if (w != u) pending.push_back(w);
      }
    }
  }
}

}  // namespace onion::core
