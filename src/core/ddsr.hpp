// The Dynamic Distributed Self-Repairing (DDSR) graph — the paper's core
// overlay construction (Section IV-C). Built on Neighbors-of-Neighbor
// (NoN) knowledge: every node knows its neighbors' neighbors, so when a
// node dies its former neighbors can stitch the hole closed without any
// global view.
//
//   Repairing:  when u is deleted, each pair of u's former neighbors
//               (uj, uk) forms an edge iff it does not already exist.
//   Pruning:    a node above dmax drops its highest-degree neighbor
//               (ties random) until back in range — keeping degree, and
//               therefore exposure, low.
//   Refilling:  a node below dmin acquires replacements from its NoN set
//               (never globally: bots only know two hops out).
//
// This graph-level engine drives the Figure 4/5/6 sweeps; the full
// bot-over-Tor stack (core/botnet.hpp) executes the same policies through
// real peer messages.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace onion::core {

/// Repair-policy knobs; defaults follow the paper. Alternatives exist for
/// the ablation benches called out in DESIGN.md §4.
struct DdsrPolicy {
  /// Degree band [dmin, dmax] the maintenance keeps nodes inside.
  std::size_t dmin = 5;
  std::size_t dmax = 5;

  /// Pruning on/off — the Figure 4 with/without-pruning comparison.
  bool prune = true;

  /// NoN refill of nodes that fell below dmin.
  bool refill = true;

  /// Which neighbor a pruning node evicts.
  enum class Victim {
    HighestDegree,  // the paper's rule: preserves reachability
    Random,         // ablation
  };
  Victim victim = Victim::HighestDegree;

  /// How a dead node's former neighbors reconnect.
  enum class Repair {
    PairwiseFull,  // the paper's rule: clique over former neighbors
    RandomMatch,   // ablation: shuffled pairing, half the edges
  };
  Repair repair = Repair::PairwiseFull;
};

/// Counters describing maintenance work done so far.
struct DdsrStats {
  std::uint64_t nodes_removed = 0;
  std::uint64_t repair_edges_added = 0;
  std::uint64_t prune_edges_removed = 0;
  std::uint64_t refill_edges_added = 0;
  /// Repair/refill requests a connector (below) refused — nonzero only
  /// under defense-consistent healing, where PoW/rate limits can turn
  /// an edge the graph-level protocol would have created into a denial.
  std::uint64_t heal_requests_denied = 0;

  /// Peer messages implied by the counters: each repair, prune, or
  /// refill edge operation is one request/acknowledge exchange in the
  /// bot-level protocol (core/botnet.hpp). Campaign snapshots report
  /// this as the overlay's self-healing traffic cost.
  std::uint64_t maintenance_messages() const {
    return repair_edges_added + prune_edges_removed + refill_edges_added;
  }
};

/// Applies DDSR maintenance to a Graph as nodes are removed. The engine
/// borrows the graph; the caller keeps ownership and may inspect it
/// between operations.
class DdsrEngine {
 public:
  DdsrEngine(graph::Graph& g, DdsrPolicy policy, Rng& rng)
      : graph_(g), policy_(policy), rng_(rng) {}

  /// Removes `u` and runs repair/prune/refill on its former neighborhood
  /// (the gradual-takedown model: one deletion, then the network heals).
  void remove_node(graph::NodeId u);

  /// Removes `u` with no healing (the "Normal" baseline of Figure 5, and
  /// the simultaneous-takedown model of Figure 6).
  void remove_node_no_repair(graph::NodeId u);

  /// How repair and refill edges come into being. Default (none):
  /// direct graph mutation — NoN peers are pre-acquainted, so healing
  /// is free. A connector interposes a peering policy: it is handed the
  /// two endpoints, returns whether the edge now exists, and owns any
  /// side effects (PoW charges, rate-limit denials, evictions). The
  /// scenario engine wires this to OverlayNetwork::request_peering for
  /// defense-consistent ablations. Pruning stays direct either way —
  /// dropping a peer ("Forgetting") is not a request anyone can refuse.
  using Connector = std::function<bool(graph::NodeId, graph::NodeId)>;
  void set_connector(Connector connect) { connect_ = std::move(connect); }

  const DdsrStats& stats() const { return stats_; }
  const DdsrPolicy& policy() const { return policy_; }

 private:
  void prune_node(graph::NodeId v, std::vector<graph::NodeId>& lost_edge);
  void refill_node(graph::NodeId v);
  void repair_clique(const std::vector<graph::NodeId>& former);
  /// Adds the edge directly or through the connector; updates `counter`
  /// on success, heal_requests_denied on refusal.
  bool connect_edge(graph::NodeId a, graph::NodeId b,
                    std::uint64_t& counter);

  graph::Graph& graph_;
  DdsrPolicy policy_;
  Rng& rng_;
  DdsrStats stats_;
  Connector connect_;  // empty = direct graph mutation
  /// Scratch adjacency bitmap for repair_clique, kept across calls so
  /// the unpruned Figure-4 runs (degrees in the thousands) pay O(1) per
  /// membership test instead of an O(deg) adjacency scan.
  std::vector<std::uint8_t> adjacent_;
};

}  // namespace onion::core
