#include "core/messages.hpp"

#include "crypto/hmac.hpp"

namespace onion::core {

namespace {
void expect_kind(Reader& r, MessageKind kind) {
  const std::uint8_t raw = r.u8();
  if (raw != static_cast<std::uint8_t>(kind))
    throw WireError("unexpected message kind");
}

void write_address_list(Writer& w,
                        const std::vector<tor::OnionAddress>& list) {
  ONION_EXPECTS(list.size() < (1u << 16));
  w.u16(static_cast<std::uint16_t>(list.size()));
  for (const auto& a : list) w.address(a);
}

std::vector<tor::OnionAddress> read_address_list(Reader& r) {
  const std::uint16_t count = r.u16();
  std::vector<tor::OnionAddress> out;
  out.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) out.push_back(r.address());
  return out;
}
}  // namespace

Bytes Command::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.str(argument);
  w.u64(issued_at);
  w.u64(nonce);
  return w.take();
}

Command Command::parse(Reader& r) {
  Command cmd;
  const std::uint8_t raw = r.u8();
  if (raw > kMaxCommandType) throw WireError("command: unknown type");
  cmd.type = static_cast<CommandType>(raw);
  cmd.argument = r.str();
  cmd.issued_at = r.u64();
  cmd.nonce = r.u64();
  return cmd;
}

Bytes SignedCommand::serialize() const {
  Writer w;
  w.var_bytes(command.serialize());
  w.u64(signature);
  w.u8(token.has_value() ? 1 : 0);
  if (token) token->serialize(w);
  return w.take();
}

SignedCommand SignedCommand::parse(BytesView bytes) {
  Reader r(bytes);
  SignedCommand out;
  const Bytes cmd_bytes = r.var_bytes();
  Reader cmd_reader(cmd_bytes);
  out.command = Command::parse(cmd_reader);
  out.signature = r.u64();
  if (r.u8() != 0) out.token = RentalToken::parse(r);
  return out;
}

bool SignedCommand::verify(const crypto::RsaPublicKey& master, SimTime now,
                           SimDuration max_age) const {
  // Freshness window: reject future-dated and stale commands.
  if (command.issued_at > now) return false;
  if (now - command.issued_at > max_age) return false;

  const Bytes body = command.serialize();
  if (!token) return crypto::rsa_verify(master, body, signature);

  // Rented command: master vouches for the token, token vouches for the
  // renter, renter vouches for the command.
  if (!token->verify(master, now)) return false;
  if (!token->allows(command.type)) return false;
  return crypto::rsa_verify(token->renter_key, body, signature);
}

SignedCommand sign_command(const crypto::RsaKeyPair& master, Command cmd) {
  SignedCommand out;
  out.command = std::move(cmd);
  out.signature = crypto::rsa_sign(master, out.command.serialize());
  return out;
}

SignedCommand sign_rented_command(const crypto::RsaKeyPair& renter,
                                  RentalToken token, Command cmd) {
  SignedCommand out;
  out.command = std::move(cmd);
  out.signature = crypto::rsa_sign(renter, out.command.serialize());
  out.token = std::move(token);
  return out;
}

Bytes encode_peer_request(const PeerRequestMsg& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::PeerRequest));
  w.address(m.from);
  w.u16(m.declared_degree);
  return w.take();
}

Bytes encode_peer_reply(const PeerReplyMsg& m) {
  Writer w;
  w.u8(m.accepted ? 1 : 0);
  w.u16(m.declared_degree);
  write_address_list(w, m.neighbors);
  return w.take();
}

Bytes encode_peer_drop(const PeerDropMsg& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::PeerDrop));
  w.address(m.from);
  return w.take();
}

Bytes encode_non_share(const NoNShareMsg& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::NoNShare));
  w.address(m.from);
  write_address_list(w, m.neighbors);
  w.u16(m.declared_degree);
  return w.take();
}

Bytes encode_address_change(const AddressChangeMsg& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::AddressChange));
  w.address(m.old_address);
  w.address(m.new_address);
  return w.take();
}

Bytes encode_ping() {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::Ping));
  return w.take();
}

Bytes encode_broadcast(BytesView envelope) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::Broadcast));
  w.var_bytes(envelope);
  return w.take();
}

Bytes encode_direct_command(const SignedCommand& cmd) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::DirectCommand));
  w.var_bytes(cmd.serialize());
  return w.take();
}

Bytes encode_probe(const ProbeMsg& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::Probe));
  w.u64(m.probe_id);
  w.u8(m.ttl);
  return w.take();
}

MessageKind peek_kind(BytesView bytes) {
  if (bytes.empty()) throw WireError("empty message");
  const std::uint8_t raw = bytes[0];
  if (raw < static_cast<std::uint8_t>(MessageKind::PeerRequest) ||
      raw > static_cast<std::uint8_t>(MessageKind::ProbeChallenge))
    throw WireError("unknown message kind");
  return static_cast<MessageKind>(raw);
}

PeerRequestMsg parse_peer_request(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::PeerRequest);
  PeerRequestMsg m;
  m.from = r.address();
  m.declared_degree = r.u16();
  return m;
}

PeerReplyMsg parse_peer_reply(BytesView bytes) {
  Reader r(bytes);
  PeerReplyMsg m;
  m.accepted = r.u8() != 0;
  m.declared_degree = r.u16();
  m.neighbors = read_address_list(r);
  return m;
}

PeerDropMsg parse_peer_drop(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::PeerDrop);
  PeerDropMsg m;
  m.from = r.address();
  return m;
}

NoNShareMsg parse_non_share(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::NoNShare);
  NoNShareMsg m;
  m.from = r.address();
  m.neighbors = read_address_list(r);
  m.declared_degree = r.u16();
  return m;
}

AddressChangeMsg parse_address_change(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::AddressChange);
  AddressChangeMsg m;
  m.old_address = r.address();
  m.new_address = r.address();
  return m;
}

Bytes parse_broadcast(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::Broadcast);
  return r.var_bytes();
}

SignedCommand parse_direct_command(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::DirectCommand);
  return SignedCommand::parse(r.var_bytes());
}

Bytes encode_probe_challenge(BytesView envelope) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageKind::ProbeChallenge));
  w.var_bytes(envelope);
  return w.take();
}

Bytes parse_probe_challenge(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::ProbeChallenge);
  return r.var_bytes();
}

Bytes probe_challenge_answer(BytesView group_key, BytesView nonce) {
  const crypto::Sha256Digest mac = crypto::hmac_sha256(group_key, nonce);
  return Bytes(mac.begin(), mac.begin() + 8);
}

ProbeMsg parse_probe(BytesView bytes) {
  Reader r(bytes);
  expect_kind(r, MessageKind::Probe);
  ProbeMsg m;
  m.probe_id = r.u64();
  m.ttl = r.u8();
  return m;
}

}  // namespace onion::core
