// Minimal binary serialization for bot-layer protocol messages. All
// integers are big-endian; variable-length fields carry a 16-bit length
// prefix. Reader throws WireError on truncated or malformed input — a bot
// must survive arbitrary bytes from the network.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "tor/onion_address.hpp"

namespace onion::core {

/// Malformed wire data (distinct from logic errors: peers may be hostile).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only message builder.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) { append(out_, be64(v)); }
  void raw(BytesView b) { append(out_, b); }
  /// 16-bit length prefix + bytes. Precondition: b.size() < 2^16.
  void var_bytes(BytesView b);
  void str(const std::string& s) { var_bytes(to_bytes(s)); }
  void address(const tor::OnionAddress& a) {
    raw(BytesView(a.identifier().data(), a.identifier().size()));
  }

  Bytes take() { return std::move(out_); }
  const Bytes& peek() const { return out_; }

 private:
  Bytes out_;
};

/// Sequential message parser over a borrowed buffer.
class Reader {
 public:
  explicit Reader(BytesView in) : in_(in) {}
  /// A Reader borrows its buffer; constructing one over a temporary
  /// Bytes would leave it dangling the moment the expression ends.
  explicit Reader(Bytes&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  Bytes var_bytes();
  std::string str();
  tor::OnionAddress address();

  bool done() const { return pos_ == in_.size(); }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  BytesView in_;
  std::size_t pos_ = 0;
};

}  // namespace onion::core
