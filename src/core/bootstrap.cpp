#include "core/bootstrap.hpp"

#include <algorithm>

namespace onion::core {

LeadList hardcoded_subset(const LeadList& infector_peers, double p,
                          Rng& rng) {
  LeadList out;
  for (const auto& address : infector_peers)
    if (rng.bernoulli(p)) out.push_back(address);
  if (out.empty() && !infector_peers.empty())
    out.push_back(rng.pick(infector_peers));
  return out;
}

void HotlistDirectory::announce(const tor::OnionAddress& address,
                                const std::vector<std::size_t>& subset) {
  for (const std::size_t s : subset) {
    ONION_EXPECTS(s < windows_.size());
    if (seized_.count(s) > 0) {
      // The defender's honeypot keeps listening: announcements to a
      // seized server are harvested.
      harvested_.push_back(address);
      continue;
    }
    auto& window = windows_[s];
    window.push_back(address);
    if (window.size() > config_.window)
      window.erase(window.begin(),
                   window.begin() +
                       static_cast<std::ptrdiff_t>(window.size() -
                                                   config_.window));
  }
}

std::vector<std::size_t> HotlistDirectory::assign_subset() {
  std::vector<std::size_t> all(config_.servers);
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return rng_.sample(all, config_.servers_per_bot);
}

LeadList HotlistDirectory::query(
    const std::vector<std::size_t>& subset) const {
  LeadList out;
  for (const std::size_t s : subset) {
    ONION_EXPECTS(s < windows_.size());
    if (seized_.count(s) > 0) continue;  // seized servers answer nothing
    out.insert(out.end(), windows_[s].begin(), windows_[s].end());
  }
  // De-duplicate while preserving order.
  LeadList dedup;
  for (const auto& a : out)
    if (std::find(dedup.begin(), dedup.end(), a) == dedup.end())
      dedup.push_back(a);
  return dedup;
}

LeadList HotlistDirectory::seize(std::size_t server) {
  ONION_EXPECTS(server < windows_.size());
  seized_.insert(server);
  LeadList haul = windows_[server];
  harvested_.insert(harvested_.end(), haul.begin(), haul.end());
  windows_[server].clear();
  return haul;
}

void OutOfBandStore::announce(Key key, const tor::OnionAddress& address) {
  LeadList& list = store_[key];
  if (std::find(list.begin(), list.end(), address) == list.end())
    list.push_back(address);
}

LeadList OutOfBandStore::lookup(Key key) const {
  const auto it = store_.find(key);
  return it == store_.end() ? LeadList{} : it->second;
}

double exposure_fraction(
    const LeadList& haul,
    const std::vector<tor::OnionAddress>& population) {
  if (population.empty()) return 0.0;
  std::size_t known = 0;
  for (const auto& member : population)
    if (std::find(haul.begin(), haul.end(), member) != haul.end()) ++known;
  return static_cast<double>(known) /
         static_cast<double>(population.size());
}

}  // namespace onion::core
