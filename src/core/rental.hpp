// Botnet-for-rent (paper §IV-E): the botmaster (Mallory) signs a token
// binding a renter's (Trudy's) public key to an expiration time and a
// whitelist of permitted commands. Bots verify a rented command by
// checking (1) the token's master signature, (2) token expiry, (3) the
// command type against the whitelist, and (4) the command signature under
// the renter key — a two-link chain of trust that needs no further
// botmaster involvement.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "core/wire.hpp"
#include "crypto/simrsa.hpp"

namespace onion::core {

/// Commands a bot can execute (paper §IV-A "Execution": DDoS, spam,
/// mining/computation; Recon covers maintenance queries).
enum class CommandType : std::uint8_t {
  Ping = 0,
  Ddos = 1,
  Spam = 2,
  Compute = 3,
  Recon = 4,
  /// Maintenance: installs a group key (paper §IV-D, "the botmaster can
  /// setup group keys to send encrypted messages for a group of bots").
  /// Argument: "<group-id-hex>:<key-hex>". Never rentable.
  InstallGroupKey = 5,
};

/// Highest valid CommandType value (wire-format bound check).
constexpr std::uint8_t kMaxCommandType =
    static_cast<std::uint8_t>(CommandType::InstallGroupKey);

/// Human-readable command name.
const char* to_string(CommandType type);

/// The signed rental contract T_T = {PK_T, expiry, whitelist}_{SK_M}.
struct RentalToken {
  crypto::RsaPublicKey renter_key;
  /// Virtual expiration time (the contract term).
  SimTime expires_at = 0;
  /// Command types the renter may issue.
  std::vector<CommandType> whitelist;
  /// Master's signature over the fields above.
  crypto::RsaSignature master_signature = 0;

  /// Canonical bytes covered by the master signature.
  Bytes signed_body() const;

  /// Full wire form (body + signature).
  void serialize(Writer& w) const;
  static RentalToken parse(Reader& r);

  /// Master signature valid and not expired at `now`.
  bool verify(const crypto::RsaPublicKey& master, SimTime now) const;

  /// Whitelist admits `type`.
  bool allows(CommandType type) const;
};

/// Issues a token: Mallory signs Trudy's key with a term and whitelist.
RentalToken issue_rental_token(const crypto::RsaKeyPair& master,
                               const crypto::RsaPublicKey& renter,
                               SimTime expires_at,
                               std::vector<CommandType> whitelist);

}  // namespace onion::core
