// Bot-layer protocol messages (paper §IV-D). Two planes:
//
//   Control plane (bot <-> bot over Tor rendezvous channels): peering,
//   NoN exchange, address-change notices, liveness pings. Confidential
//   to the pair by the Tor substrate itself.
//
//   Command plane (C&C -> bots): signed commands. Direct commands ride a
//   Tor connection straight to the target bot's current .onion address;
//   broadcast commands are flood-relayed bot-to-bot as fixed-size,
//   uniform-looking envelopes (crypto::uniform_encode under the group
//   key), so relaying bots cannot tell source, destination, or nature —
//   and neither can an authority running captured bots.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "core/rental.hpp"
#include "core/wire.hpp"
#include "crypto/simrsa.hpp"
#include "tor/onion_address.hpp"

namespace onion::core {

/// Wire discriminator for bot-layer messages.
enum class MessageKind : std::uint8_t {
  PeerRequest = 1,
  PeerDrop = 2,
  NoNShare = 3,
  AddressChange = 4,
  Ping = 5,
  Broadcast = 6,
  DirectCommand = 7,
  Probe = 8,  // SuperOnion connectivity probe (paper §VII-B)
  /// Keyed liveness challenge (paper §VII-A "probing" defense): a
  /// uniform envelope under the group key holding a fresh nonce. Honest
  /// peers answer HMAC(group-key, nonce); a defender's clone can
  /// neither read the nonce nor — legally — operate the botnet's crypto
  /// to answer, so its reply unmasks it.
  ProbeChallenge = 9,
};

/// A command from the botmaster (or a renter).
struct Command {
  CommandType type = CommandType::Ping;
  /// Free-form argument (e.g. DDoS target).
  std::string argument;
  /// Virtual issue time; bots reject stale commands (replay defense).
  SimTime issued_at = 0;
  /// Random nonce; bots remember recent nonces (replay defense).
  std::uint64_t nonce = 0;

  Bytes serialize() const;
  static Command parse(Reader& r);
};

/// A command plus its authentication: master-signed, or renter-signed
/// with a master-issued rental token.
struct SignedCommand {
  Command command;
  crypto::RsaSignature signature = 0;
  std::optional<RentalToken> token;

  Bytes serialize() const;
  static SignedCommand parse(BytesView bytes);

  /// Verifies the chain of trust at time `now`: direct master signature,
  /// or valid unexpired token whose whitelist admits the command type and
  /// whose renter key signed the command. `max_age` bounds staleness.
  bool verify(const crypto::RsaPublicKey& master, SimTime now,
              SimDuration max_age) const;
};

/// Signs a command with the master key (no token).
SignedCommand sign_command(const crypto::RsaKeyPair& master, Command cmd);

/// Signs a command with a renter key, attaching the rental token.
SignedCommand sign_rented_command(const crypto::RsaKeyPair& renter,
                                  RentalToken token, Command cmd);

/// --- control-plane message bodies ------------------------------------

struct PeerRequestMsg {
  tor::OnionAddress from;
  std::uint16_t declared_degree = 0;
};

struct PeerReplyMsg {
  bool accepted = false;
  std::uint16_t declared_degree = 0;
  /// On accept, the responder shares its neighbor list — the NoN
  /// knowledge that powers DDSR repair (and that SOAP harvests).
  std::vector<tor::OnionAddress> neighbors;
};

struct PeerDropMsg {
  tor::OnionAddress from;
};

struct NoNShareMsg {
  tor::OnionAddress from;
  std::vector<tor::OnionAddress> neighbors;
  std::uint16_t declared_degree = 0;
};

struct AddressChangeMsg {
  tor::OnionAddress old_address;
  tor::OnionAddress new_address;
};

struct ProbeMsg {
  std::uint64_t probe_id = 0;
  std::uint8_t ttl = 0;
};

/// Top-level encode/decode: 1-byte kind + body.
Bytes encode_peer_request(const PeerRequestMsg& m);
Bytes encode_peer_reply(const PeerReplyMsg& m);
Bytes encode_peer_drop(const PeerDropMsg& m);
Bytes encode_non_share(const NoNShareMsg& m);
Bytes encode_address_change(const AddressChangeMsg& m);
Bytes encode_ping();
Bytes encode_broadcast(BytesView envelope);
Bytes encode_direct_command(const SignedCommand& cmd);
Bytes encode_probe(const ProbeMsg& m);
Bytes encode_probe_challenge(BytesView envelope);

/// Peeks the kind byte; throws WireError on empty input.
MessageKind peek_kind(BytesView bytes);

PeerRequestMsg parse_peer_request(BytesView bytes);
PeerReplyMsg parse_peer_reply(BytesView bytes);
PeerDropMsg parse_peer_drop(BytesView bytes);
NoNShareMsg parse_non_share(BytesView bytes);
AddressChangeMsg parse_address_change(BytesView bytes);
Bytes parse_broadcast(BytesView bytes);
SignedCommand parse_direct_command(BytesView bytes);
ProbeMsg parse_probe(BytesView bytes);
Bytes parse_probe_challenge(BytesView bytes);

/// The answer an honest bot computes for a challenge nonce: the first 8
/// bytes of HMAC(group_key, nonce). Both sides call this.
Bytes probe_challenge_answer(BytesView group_key, BytesView nonce);

}  // namespace onion::core
