#include "core/overlay.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/union_find.hpp"

namespace onion::core {

using graph::NodeId;

OverlayNetwork OverlayNetwork::random_regular(std::size_t n, std::size_t k,
                                              OverlayConfig config,
                                              Rng& rng) {
  OverlayNetwork net(config, rng);
  net.reserve(n);
  for (std::size_t i = 0; i < n; ++i) net.add_node(/*honest=*/true);
  const graph::Graph topology = graph::random_regular(n, k, rng);
  for (NodeId u = 0; u < n; ++u)
    for (const NodeId v : topology.neighbors(u))
      if (u < v) net.graph_.add_edge(u, v);
  return net;
}

void OverlayNetwork::reserve(std::size_t nodes) {
  graph_.reserve(nodes);
  honest_.reserve(nodes);
  declared_.reserve(nodes);
  requests_seen_.reserve(nodes);
  accepted_this_round_.reserve(nodes);
}

NodeId OverlayNetwork::add_node(bool honest, std::size_t declared_degree) {
  // Slot metadata first: graph_.add_node() notifies any attached
  // MutationObserver, and the scenario StructuralTracker classifies the
  // new node (honest vs Sybil) from inside that callback. The new id
  // equals the pre-push size of every slot-parallel vector.
  ONION_EXPECTS(declared_degree == kTruthful ||
                declared_degree < kTruthful32);
  honest_.push_back(honest ? 1 : 0);
  declared_.push_back(declared_degree == kTruthful
                          ? kTruthful32
                          : static_cast<std::uint32_t>(declared_degree));
  requests_seen_.push_back(0);
  accepted_this_round_.push_back(0);
  const NodeId id = graph_.add_node();
  ONION_ENSURES(honest_.size() == graph_.capacity());
  return id;
}

std::size_t OverlayNetwork::declared_degree(NodeId u) const {
  const std::uint32_t lie = declared_.at(u);
  if (lie == kTruthful32) return graph_.degree(u);
  return lie;
}

double OverlayNetwork::pow_cost_for(NodeId target) {
  if (config_.pow_base_cost <= 0.0) return 0.0;
  const double cost =
      config_.pow_base_cost *
      std::pow(config_.pow_growth,
               static_cast<double>(requests_seen_[target]));
  ++requests_seen_[target];
  return cost;
}

PeerDecision OverlayNetwork::request_peering(NodeId requester,
                                             NodeId target,
                                             NodeId* evicted) {
  ONION_EXPECTS(graph_.alive(requester) && graph_.alive(target));
  ONION_EXPECTS(requester != target);
  if (evicted != nullptr) *evicted = graph::kInvalidNode;

  // The proof-of-work puzzle is solved before the target even considers
  // the request; it is sunk cost for the requester.
  const double cost = pow_cost_for(target);
  (honest(requester) ? honest_work_ : sybil_work_) += cost;

  if (graph_.has_edge(requester, target)) return PeerDecision::Rejected;
  if (accepted_this_round_[target] >= config_.rate_limit_per_round)
    return PeerDecision::RateLimited;

  if (graph_.degree(target) < config_.dmax) {
    graph_.add_edge(requester, target);
    ++accepted_this_round_[target];
    return PeerDecision::AcceptedWithCapacity;
  }

  // Full: accept only if the newcomer undercuts the worst current peer
  // (by declared degree); that peer is evicted — Figure 7 step 4.
  const auto& peers = graph_.neighbors(target);
  NodeId victim = graph::kInvalidNode;
  std::size_t worst = 0;
  std::size_t ties = 0;
  for (const NodeId p : peers) {
    const std::size_t d = declared_degree(p);
    if (d > worst) {
      worst = d;
      victim = p;
      ties = 1;
    } else if (d == worst && victim != graph::kInvalidNode) {
      ++ties;
      if (rng_.uniform(ties) == 0) victim = p;
    }
  }
  if (victim == graph::kInvalidNode || declared_degree(requester) >= worst)
    return PeerDecision::Rejected;

  graph_.remove_edge(target, victim);
  graph_.add_edge(requester, target);
  ++accepted_this_round_[target];
  if (evicted != nullptr) *evicted = victim;
  return PeerDecision::AcceptedEvicted;
}

void OverlayNetwork::refill(NodeId v) {
  if (!graph_.alive(v) || !honest(v)) return;
  while (graph_.degree(v) < config_.dmin) {
    std::vector<NodeId> candidates;
    for (const NodeId n : graph_.neighbors(v)) {
      for (const NodeId nn : graph_.neighbors(n)) {
        if (nn == v || graph_.has_edge(v, nn)) continue;
        if (std::find(candidates.begin(), candidates.end(), nn) ==
            candidates.end())
          candidates.push_back(nn);
      }
    }
    if (candidates.empty()) return;
    const NodeId pick =
        candidates[static_cast<std::size_t>(rng_.uniform(candidates.size()))];
    // An honest node cannot tell a clone from a bot; it simply asks.
    const PeerDecision decision = request_peering(v, pick);
    if (decision == PeerDecision::Rejected ||
        decision == PeerDecision::RateLimited)
      return;  // give up this round; the next round may retry
  }
}

void OverlayNetwork::begin_round() {
  std::fill(accepted_this_round_.begin(), accepted_this_round_.end(), 0);
}

bool OverlayNetwork::contained(NodeId u) const {
  if (!graph_.alive(u)) return false;
  const auto& peers = graph_.neighbors(u);
  if (peers.empty()) return true;  // isolated: cut off from the botnet
  for (const NodeId p : peers)
    if (honest(p)) return false;
  return true;
}

std::size_t OverlayNetwork::honest_edges() const {
  std::size_t count = 0;
  for (NodeId u = 0; u < graph_.capacity(); ++u) {
    if (!graph_.alive(u) || !honest(u)) continue;
    for (const NodeId v : graph_.neighbors(u))
      if (honest(v) && u < v) ++count;
  }
  return count;
}

std::vector<std::uint32_t> OverlayNetwork::honest_component_labels() const {
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::vector<std::uint32_t> label(graph_.capacity(), kNone);
  std::uint32_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < graph_.capacity(); ++start) {
    if (!graph_.alive(start) || !honest(start) || label[start] != kNone)
      continue;
    const std::uint32_t comp = next++;
    label[start] = comp;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : graph_.neighbors(u)) {
        if (!honest(v) || label[v] != kNone) continue;
        label[v] = comp;
        stack.push_back(v);
      }
    }
  }
  return label;
}

std::size_t OverlayNetwork::honest_components() const {
  graph::UnionFind uf(graph_.capacity());
  std::size_t honest_alive = 0;
  for (NodeId u = 0; u < graph_.capacity(); ++u) {
    if (!graph_.alive(u) || !honest(u)) continue;
    ++honest_alive;
    for (const NodeId v : graph_.neighbors(u))
      if (v > u && graph_.alive(v) && honest(v)) uf.unite(u, v);
  }
  if (honest_alive == 0) return 0;
  // num_sets counts singletons for every slot; correct by subtracting the
  // non-honest/dead slots.
  return uf.num_sets() - (graph_.capacity() - honest_alive);
}

std::vector<NodeId> OverlayNetwork::honest_nodes() const {
  std::vector<NodeId> out;
  out.reserve(graph_.num_alive());
  for (NodeId u = 0; u < graph_.capacity(); ++u)
    if (graph_.alive(u) && honest(u)) out.push_back(u);
  return out;
}

}  // namespace onion::core
