// The OnionBot proper (paper Section IV): bots living as Tor hidden
// services, a botmaster that can reach every bot without revealing
// itself, and the harness that wires a whole botnet over the simulated
// privacy infrastructure.
//
// Life cycle (paper §IV-A): Infection (abstract seeding here) -> Rally
// (peer bootstrap) -> Waiting (peer maintenance, heartbeats, rotation) ->
// Execution (authenticated commands). Every identity is a .onion
// address; no bot — not even the C&C — ever learns another bot's host.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "crypto/kdf.hpp"
#include "graph/graph.hpp"
#include "sim/simulator.hpp"
#include "tor/tor_network.hpp"

namespace onion::core {

class Botnet;

/// Per-bot tuning knobs.
struct BotConfig {
  /// Degree band for the DDSR maintenance.
  std::size_t dmin = 4;
  std::size_t dmax = 8;

  /// .onion address lifetime; each period the bot derives a fresh
  /// service key from (PK_CC, K_B, period) and re-publishes (paper
  /// "Forgetting" / §IV-D).
  SimDuration rotation_period = 6 * kHour;

  /// Liveness ping cadence; a peer failing kPingFailuresForDead
  /// consecutive pings is declared dead, triggering DDSR repair.
  SimDuration heartbeat_interval = 90 * kSecond;

  /// Periodic NoN (neighbor-list) exchange cadence.
  SimDuration non_share_interval = 4 * kMinute;

  /// Commands older than this are rejected (anti-replay window).
  SimDuration command_max_age = 1 * kHour;

  /// §VII-A "probing" defense: heartbeats carry a keyed challenge
  /// instead of a plain ping. A peer that answers wrongly is dropped on
  /// the spot (a defender clone cannot answer without operating the
  /// botnet's crypto). Off by default — the *basic* OnionBot, which is
  /// what SOAP defeats.
  bool probe_peers = false;
};

/// Consecutive ping failures before a peer is declared dead.
constexpr int kPingFailuresForDead = 2;

/// What a bot knows about one peer.
struct PeerInfo {
  std::uint16_t declared_degree = 0;
  SimTime last_seen = 0;
  /// The peer's own neighbor list (NoN knowledge; repair material).
  std::vector<tor::OnionAddress> neighbors;
  int failed_pings = 0;
};

/// A command a bot actually ran, for test/bench introspection.
struct ExecutedCommand {
  CommandType type = CommandType::Ping;
  std::string argument;
  SimTime at = 0;
  bool rented = false;
};

/// One OnionBot.
class Bot {
 public:
  enum class Stage { Infected, Rally, Waiting, Executing };

  /// Constructed by Botnet; `kb` is the link key shared with the C&C at
  /// infection time.
  Bot(Botnet& net, std::uint32_t id, Bytes kb, BotConfig config);

  std::uint32_t id() const { return id_; }
  bool alive() const { return alive_; }
  Stage stage() const { return stage_; }

  /// Current .onion address (changes every rotation period).
  const tor::OnionAddress& address() const { return address_; }

  /// Current peer table (keyed by peer .onion address).
  const std::map<tor::OnionAddress, PeerInfo>& peers() const {
    return peers_;
  }
  std::size_t degree() const { return peers_.size(); }

  /// Commands this bot executed.
  const std::vector<ExecutedCommand>& executed() const { return executed_; }

  /// Subgroup keys this bot holds (group id -> key).
  const std::map<std::uint64_t, Bytes>& group_keys() const {
    return group_keys_;
  }

  /// Rally from a bootstrap list (hard-coded peer list / hotlist entry
  /// points): requests peering until reaching dmin or exhausting leads,
  /// following returned neighbor lists (paper §IV-B).
  void rally(std::vector<tor::OnionAddress> bootstrap);

  /// Number of broadcast envelopes this bot relayed (stealth accounting).
  std::uint64_t broadcasts_relayed() const { return broadcasts_relayed_; }

 private:
  friend class Botnet;

  // --- service plumbing ---
  Bytes handle_request(BytesView request);
  void publish_current_address();
  void send(const tor::OnionAddress& to, Bytes message,
            tor::ConnectCallback callback = {});

  // --- message handlers ---
  Bytes on_peer_request(const PeerRequestMsg& m);
  void on_peer_drop(const PeerDropMsg& m);
  void on_non_share(const NoNShareMsg& m);
  void on_address_change(const AddressChangeMsg& m);
  Bytes on_broadcast(BytesView message);
  Bytes on_direct_command(BytesView message);
  Bytes on_probe_challenge(BytesView message);

  // --- maintenance ---
  void schedule_heartbeat();
  void schedule_non_share();
  void schedule_rotation();
  void heartbeat();
  /// Probe-before-adopt (§VII-A, when probe_peers is on): challenges a
  /// freshly accepted peer and forgets it on a wrong answer.
  void challenge_new_peer(const tor::OnionAddress& addr);
  void share_non();
  void rotate_address();
  void peer_died(const tor::OnionAddress& dead);
  void prune_if_needed();
  void refill_if_needed();
  void execute(const SignedCommand& cmd);
  bool fresh_nonce(std::uint64_t nonce);

  Botnet& net_;
  std::uint32_t id_;
  Bytes kb_;
  BotConfig config_;
  bool alive_ = true;
  Stage stage_ = Stage::Infected;

  tor::EndpointId endpoint_ = tor::kInvalidEndpoint;
  crypto::RsaKeyPair service_key_;
  tor::OnionAddress address_;
  std::uint64_t current_period_ = 0;

  std::map<tor::OnionAddress, PeerInfo> peers_;
  std::set<crypto::Sha1Digest> seen_broadcasts_;
  std::set<std::uint64_t> seen_nonces_;
  std::vector<ExecutedCommand> executed_;
  std::uint64_t broadcasts_relayed_ = 0;
  /// Subgroup keys installed by InstallGroupKey commands (paper §IV-D).
  /// Envelopes under a key the bot lacks are relayed unread.
  std::map<std::uint64_t, Bytes> group_keys_;
  Rng rng_;
};

/// The botmaster: holds the master key pair, the group (broadcast) key,
/// and the bot registry of link keys K_B — everything needed to derive
/// every bot's current address and to sign commands. Reaches the botnet
/// only through Tor; never appears as anything but another endpoint.
class Botmaster {
 public:
  Botmaster(Botnet& net, Rng& rng);

  const crypto::RsaPublicKey& public_key() const { return key_.pub; }
  const Bytes& group_key() const { return group_key_; }

  /// Registers an infected bot's link key ({K_B}_{PK_CC} in the paper;
  /// the harness models the rally-time registration having happened).
  void register_bot(std::uint32_t bot_id, BytesView kb);

  /// The address bot `bot_id` answers on during `period` — derived
  /// independently of the bot, which is what makes rotation free for the
  /// C&C (paper §IV-D).
  tor::OnionAddress derive_address(std::uint32_t bot_id,
                                   std::uint64_t period) const;

  /// Builds and signs a broadcast command, wraps it in a uniform-looking
  /// envelope, and injects it at `fanout` random alive bots.
  void broadcast(Command cmd, std::size_t fanout = 3);

  /// Same, but signed by a renter under a rental token.
  void broadcast_rented(const crypto::RsaKeyPair& renter,
                        const RentalToken& token, Command cmd,
                        std::size_t fanout = 3);

  /// Sends a command directly to one bot's current address; the callback
  /// reports delivery.
  void direct(std::uint32_t bot_id, Command cmd,
              tor::ConnectCallback callback = {});

  /// Issues a rental token (paper §IV-E).
  RentalToken rent(const crypto::RsaPublicKey& renter, SimTime expires_at,
                   std::vector<CommandType> whitelist) const;

  /// --- subgroups (paper §IV-D group keys) -----------------------------
  /// Creates a group over `members`: generates a key and delivers it to
  /// each member with a signed InstallGroupKey direct command. Returns
  /// the group id.
  std::uint64_t create_group(const std::vector<std::uint32_t>& members);

  /// Signs `cmd` and floods it in an envelope only group members can
  /// open; everyone else relays it unread. Precondition: group exists.
  void broadcast_group(std::uint64_t group, Command cmd,
                       std::size_t fanout = 3);

  /// Members of a group (introspection for tests/benches).
  const std::vector<std::uint32_t>& group_members(std::uint64_t group) const;

  /// Fresh nonce for a new command.
  std::uint64_t next_nonce() { return rng_.next_u64(); }

 private:
  struct Group {
    Bytes key;
    std::vector<std::uint32_t> members;
  };

  void inject(Bytes message, std::size_t fanout);

  Botnet& net_;
  Rng& rng_;
  crypto::RsaKeyPair key_;
  Bytes group_key_;
  tor::EndpointId endpoint_ = tor::kInvalidEndpoint;
  std::map<std::uint32_t, Bytes> registry_;
  std::map<std::uint64_t, Group> groups_;
};

/// The whole simulated botnet: simulator + Tor network + bots + master.
class Botnet {
 public:
  struct Params {
    std::size_t num_bots = 50;
    /// Initial overlay degree (bots arrive pre-rallied into a random
    /// k-regular overlay; use Bot::rally to exercise live bootstrap).
    std::size_t initial_degree = 4;
    BotConfig bot;
    tor::TorConfig tor;
    std::uint64_t seed = 0x0badbee5;
  };

  explicit Botnet(Params params);

  sim::Simulator& simulator() { return sim_; }
  tor::TorNetwork& tor() { return tor_; }
  Botmaster& master() { return *master_; }
  const Params& params() const { return params_; }
  Rng& rng() { return rng_; }

  std::size_t num_bots() const { return bots_.size(); }
  Bot& bot(std::size_t i) { return *bots_.at(i); }
  const Bot& bot(std::size_t i) const { return *bots_.at(i); }
  std::size_t num_alive() const;

  /// Advances virtual time.
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// Takedown of one bot: its services vanish; peers discover the death
  /// through failed heartbeats and run DDSR repair.
  void kill_bot(std::size_t i);

  /// Adds a fresh bot (infection event); it must rally() to join.
  Bot& infect_new_bot();

  /// Current rotation period index.
  std::uint64_t current_period() const {
    return sim_.now() / params_.bot.rotation_period;
  }

  /// Snapshot of the overlay as a graph over bot IDs (mutual peer-table
  /// entries between alive bots). The omniscient-observer view used by
  /// tests and benches; no bot has this picture.
  graph::Graph overlay_snapshot() const;

  /// Bot ID currently answering on `address`, if any.
  std::optional<std::uint32_t> bot_by_address(
      const tor::OnionAddress& address) const;

  /// Total executions of `type` across all bots (dead ones included).
  std::size_t count_executed(CommandType type) const;

 private:
  friend class Bot;
  friend class Botmaster;

  Params params_;
  Rng rng_;
  sim::Simulator sim_;
  tor::TorNetwork tor_;
  std::unique_ptr<Botmaster> master_;
  std::vector<std::unique_ptr<Bot>> bots_;
};

}  // namespace onion::core
