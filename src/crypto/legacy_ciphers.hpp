// The weak "crypto" schemes real botnets shipped (paper Table I):
//   Miner          — no encryption at all
//   Storm          — single-byte XOR
//   Zeus           — chained XOR (each ciphertext byte keys the next)
// (ZeroAccess v1's RC4 lives in rc4.hpp.)
// Implemented so the Table I bench can demonstrate, in running code, why
// each is replayable and hijackable — the contrast motivating OnionBot's
// cryptographic design (paper Section IV-E).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace onion::crypto {

/// Storm-style XOR: every byte XORed with the same single-byte key.
Bytes xor_cipher(BytesView data, std::uint8_t key);

/// Zeus-style chained XOR encryption: out[0] = in[0] ^ key;
/// out[i] = in[i] ^ out[i-1]. Self-synchronizing and trivially breakable,
/// reproduced faithfully from the malware analyses the paper cites.
Bytes chained_xor_encrypt(BytesView data, std::uint8_t key);

/// Inverse of chained_xor_encrypt.
Bytes chained_xor_decrypt(BytesView data, std::uint8_t key);

}  // namespace onion::crypto
