// Simulation-grade RSA.
//
// The paper's design needs real *functional* RSA: hidden-service identity
// keys (the .onion name is a hash of the public key), the botmaster's
// hard-coded public key, signed commands, and signed rental tokens. The
// measured results never depend on key length, so the simulator uses
// honest RSA arithmetic (Miller–Rabin keygen, modular exponentiation via
// unsigned __int128) over ~62-bit moduli. `nominal_bits` records the key
// size the modeled deployment would use (512 for ZeroAccess, 2048 for
// Zeus/OnionBot) purely as metadata.
//
// NOT CRYPTOGRAPHICALLY SECURE — 62-bit moduli are factorable instantly.
// This is a research simulator; see DESIGN.md §3 (substitutions).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace onion::crypto {

/// RSA public key (n, e) plus the nominal key size it stands in for.
struct RsaPublicKey {
  std::uint64_t n = 0;
  std::uint64_t e = 0;
  int nominal_bits = 0;

  /// Deterministic serialization (hashed to derive .onion identifiers).
  Bytes serialize() const;

  bool operator==(const RsaPublicKey&) const = default;
};

/// Full key pair. The private exponent stays inside the owning actor.
struct RsaKeyPair {
  RsaPublicKey pub;
  std::uint64_t d = 0;
};

/// 64-bit RSA signature (see header comment for the security caveat).
using RsaSignature = std::uint64_t;

/// Generates a key pair with two fresh ~31-bit primes. `nominal_bits` is
/// carried as metadata (e.g. 2048 for the botmaster key).
RsaKeyPair rsa_generate(Rng& rng, int nominal_bits);

/// Signs SHA-256(message) reduced into the key's modulus.
RsaSignature rsa_sign(const RsaKeyPair& key, BytesView message);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& pub, BytesView message, RsaSignature sig);

/// Raw RSA on a value < n (building block for the hybrid scheme).
std::uint64_t rsa_encrypt_value(const RsaPublicKey& pub, std::uint64_t value);
std::uint64_t rsa_decrypt_value(const RsaKeyPair& key, std::uint64_t value);

/// Hybrid public-key encryption: a random session value is RSA-encrypted
/// and the payload is stream-enciphered under its hash. Used by bots to
/// report their link key K_B to the C&C ({K_B}_{PK_CC}, paper §IV-D).
Bytes rsa_hybrid_encrypt(const RsaPublicKey& pub, BytesView plaintext,
                         Rng& rng);

/// Inverse of rsa_hybrid_encrypt; throws std::invalid_argument on
/// malformed ciphertext.
Bytes rsa_hybrid_decrypt(const RsaKeyPair& key, BytesView ciphertext);

/// Deterministic Miller–Rabin, exact for all 64-bit inputs (exposed for
/// tests and the proof-of-work defense).
bool is_prime_u64(std::uint64_t n);

/// (base^exp) mod mod, mod > 0.
std::uint64_t modpow_u64(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t mod);

}  // namespace onion::crypto
