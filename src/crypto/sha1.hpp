// SHA-1 (FIPS 180-4). Tor derives .onion identifiers, relay fingerprints,
// and hidden-service descriptor IDs from SHA-1 digests (Section III of the
// paper), so the simulator implements it in full and tests it against the
// official vectors. SHA-1 is used here for protocol fidelity, not for
// collision resistance.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace onion::crypto {

/// 160-bit SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1: init -> update* -> finalize. Reusable after reset().
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Clears state for a fresh hash.
  void reset();

  /// Absorbs `data`.
  void update(BytesView data);

  /// Completes the hash. The object must be reset() before reuse.
  Sha1Digest finalize();

  /// One-shot convenience.
  static Sha1Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as an owning buffer (handy for concatenation into protocol
/// messages).
Bytes digest_bytes(const Sha1Digest& d);

}  // namespace onion::crypto
