// Uniform-looking message encoding (paper §IV-D): "to achieve
// indistinguishability between all messages, we use constructions such as
// Elligator. As a result no information is leaked to the relaying bots."
//
// The property OnionBot needs is behavioural: every byte a relaying bot
// sees — headers included — must be indistinguishable from uniform random
// data, and every message must have the same fixed size. We implement that
// property with a keyed, authenticated stream encoding (stand-in for real
// Elligator point encoding, whose algebra adds nothing to the simulation)
// and verify it statistically in the test suite (chi-square over byte
// frequencies).
//
// Cell layout (encrypt-then-MAC, so *every* byte is authenticated —
// flipping even a padding bit must be detected):
//
//   nonce(16) ‖ C ‖ tag(8),   C = E(len(2) ‖ plaintext ‖ random padding)
//
// where E is a stream cipher keyed by HMAC(key, nonce) and
// tag = HMAC(key, nonce ‖ C) truncated. Nonce, C, and tag are each
// pseudorandom, so the whole cell stays uniform-looking.
#pragma once

#include <cstddef>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace onion::crypto {

/// All encoded messages are exactly this long — mirroring Tor's fixed-size
/// cells so length reveals nothing either.
constexpr std::size_t kUniformCellSize = 512;

/// Maximum plaintext per cell: cell minus nonce(16), length(2), tag(8).
constexpr std::size_t kUniformCellCapacity = kUniformCellSize - 16 - 2 - 8;

/// Encodes `plaintext` into a fixed-size, uniform-looking cell under
/// `key`. A fresh random nonce per call means encoding the same plaintext
/// twice yields unrelated ciphertexts. Precondition: plaintext.size() <=
/// kUniformCellCapacity.
Bytes uniform_encode(BytesView key, BytesView plaintext, Rng& rng);

/// Decodes and authenticates a cell produced by uniform_encode under the
/// same key. Returns std::nullopt on wrong size, wrong key, corrupted
/// bytes, or an inconsistent length field.
std::optional<Bytes> uniform_decode(BytesView key, BytesView cell);

}  // namespace onion::crypto
