#include "crypto/rc4.hpp"

#include <numeric>

#include "common/check.hpp"

namespace onion::crypto {

Rc4::Rc4(BytesView key) {
  ONION_EXPECTS(!key.empty() && key.size() <= 256);
  std::iota(state_.begin(), state_.end(), 0);
  std::uint8_t j = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + state_[i] + key[i % key.size()]);
    std::swap(state_[i], state_[j]);
  }
}

std::uint8_t Rc4::next_byte() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + state_[i_]);
  std::swap(state_[i_], state_[j_]);
  return state_[static_cast<std::uint8_t>(state_[i_] + state_[j_])];
}

Bytes Rc4::process(BytesView data) {
  Bytes out(data.size());
  for (std::size_t n = 0; n < data.size(); ++n) out[n] = data[n] ^ next_byte();
  return out;
}

}  // namespace onion::crypto
