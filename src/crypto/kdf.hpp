// Key derivation for the OnionBot address-rotation scheme (paper §IV-D):
//
//   new private key = generateKey(PK_CC, H(K_B, i_p))
//
// where K_B is the symmetric key the bot shared with the C&C at rally time
// and i_p is the index of the rotation period (e.g. the day number). Both
// the bot and the botmaster can run this independently, which is what lets
// the C&C reach every bot after it changes its .onion address without any
// directory or broadcast.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "crypto/simrsa.hpp"

namespace onion::crypto {

/// Generic labeled derivation: HMAC-SHA256(secret, label ‖ context).
Bytes derive_bytes(BytesView secret, std::string_view label,
                   BytesView context);

/// The paper's recipe: a deterministic RSA key pair seeded by
/// HMAC-SHA256(K_B ‖ period) bound to the C&C public key. Deterministic:
/// the same (PK_CC, K_B, period) always yields the same service identity,
/// on the bot and at the C&C.
RsaKeyPair rotated_service_key(const RsaPublicKey& cnc_key, BytesView kb,
                               std::uint64_t period_index);

}  // namespace onion::crypto
