#include "crypto/elligator_sim.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rc4.hpp"

namespace onion::crypto {

namespace {
constexpr std::size_t kNonceSize = 16;
constexpr std::size_t kLenSize = 2;
constexpr std::size_t kTagSize = 8;
constexpr std::size_t kCipherSize = kUniformCellSize - kNonceSize - kTagSize;

Rc4 keystream_for(BytesView key, BytesView nonce) {
  const Sha256Digest k = hmac_sha256(key, nonce);
  return Rc4(BytesView(k.data(), k.size()));
}

// Tag over everything the receiver will trust: nonce and full ciphertext.
Bytes auth_tag(BytesView key, BytesView nonce, BytesView ciphertext) {
  const Sha256Digest mac = hmac_sha256(key, concat(nonce, ciphertext));
  return Bytes(mac.begin(), mac.begin() + kTagSize);
}
}  // namespace

Bytes uniform_encode(BytesView key, BytesView plaintext, Rng& rng) {
  ONION_EXPECTS(plaintext.size() <= kUniformCellCapacity);

  Bytes cell(kUniformCellSize);
  for (std::size_t i = 0; i < kNonceSize; ++i)
    cell[i] = static_cast<std::uint8_t>(rng.next_u64());
  const BytesView nonce(cell.data(), kNonceSize);

  // Inner record: len ‖ plaintext ‖ random padding, then enciphered.
  Bytes record;
  record.reserve(kCipherSize);
  record.push_back(static_cast<std::uint8_t>(plaintext.size() >> 8));
  record.push_back(static_cast<std::uint8_t>(plaintext.size() & 0xff));
  append(record, plaintext);
  while (record.size() < kCipherSize)
    record.push_back(static_cast<std::uint8_t>(rng.next_u64()));

  Rc4 stream = keystream_for(key, nonce);
  const Bytes ciphertext = stream.process(record);
  std::copy(ciphertext.begin(), ciphertext.end(), cell.begin() + kNonceSize);

  const Bytes tag = auth_tag(key, nonce, ciphertext);
  std::copy(tag.begin(), tag.end(),
            cell.begin() + static_cast<std::ptrdiff_t>(kNonceSize + kCipherSize));
  return cell;
}

std::optional<Bytes> uniform_decode(BytesView key, BytesView cell) {
  if (cell.size() != kUniformCellSize) return std::nullopt;
  const BytesView nonce = cell.first(kNonceSize);
  const BytesView ciphertext = cell.subspan(kNonceSize, kCipherSize);
  const BytesView tag = cell.subspan(kNonceSize + kCipherSize);

  // Authenticate before touching the plaintext (encrypt-then-MAC order).
  const Bytes expected = auth_tag(key, nonce, ciphertext);
  if (!std::equal(expected.begin(), expected.end(), tag.begin(), tag.end()))
    return std::nullopt;

  Rc4 stream = keystream_for(key, nonce);
  const Bytes record = stream.process(ciphertext);
  const std::size_t len =
      static_cast<std::size_t>(record[0]) << 8 | record[1];
  if (len > kUniformCellCapacity) return std::nullopt;
  return Bytes(record.begin() + kLenSize,
               record.begin() + static_cast<std::ptrdiff_t>(kLenSize + len));
}

}  // namespace onion::crypto
