// RC4 stream cipher. Two roles in this repository: (1) ZeroAccess v1's
// payload cipher in the Table I baseline reproduction, and (2) the
// simulation-grade per-hop cipher inside simulated Tor circuits (stand-in
// for AES-CTR; the evaluation never depends on cipher strength, only on
// the layered-encryption structure). Tested against the classic published
// vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace onion::crypto {

/// RC4 keystream generator; process() encrypts and decrypts (XOR stream).
class Rc4 {
 public:
  /// Precondition: 1 <= key.size() <= 256.
  explicit Rc4(BytesView key);

  /// XORs the keystream into a copy of `data` and returns it.
  Bytes process(BytesView data);

  /// Next keystream byte (exposed for the uniform-encoding layer).
  std::uint8_t next_byte();

 private:
  std::array<std::uint8_t, 256> state_;
  std::uint8_t i_ = 0;
  std::uint8_t j_ = 0;
};

}  // namespace onion::crypto
