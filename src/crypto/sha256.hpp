// SHA-256 (FIPS 180-4). The OnionBot C&C protocol hashes commands before
// signing, and the address-rotation KDF is HMAC-SHA256 based. Tested
// against the official vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace onion::crypto {

/// 256-bit SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256: init -> update* -> finalize. Reusable after
/// reset().
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Sha256Digest finalize();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as an owning buffer.
Bytes digest_bytes(const Sha256Digest& d);

}  // namespace onion::crypto
