#include "crypto/legacy_ciphers.hpp"

namespace onion::crypto {

Bytes xor_cipher(BytesView data, std::uint8_t key) {
  Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i] ^ key;
  return out;
}

Bytes chained_xor_encrypt(BytesView data, std::uint8_t key) {
  Bytes out(data.size());
  std::uint8_t prev = key;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i] ^ prev;
    prev = out[i];
  }
  return out;
}

Bytes chained_xor_decrypt(BytesView data, std::uint8_t key) {
  Bytes out(data.size());
  std::uint8_t prev = key;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i] ^ prev;
    prev = data[i];
  }
  return out;
}

}  // namespace onion::crypto
