// HMAC (RFC 2104) over SHA-256 and SHA-1. HMAC-SHA256 underpins the
// address-rotation KDF; HMAC-SHA1 exists for protocol-fidelity tests.
// Verified against RFC 4231 / RFC 2202 vectors.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace onion::crypto {

/// HMAC-SHA256(key, message).
Sha256Digest hmac_sha256(BytesView key, BytesView message);

/// HMAC-SHA1(key, message).
Sha1Digest hmac_sha1(BytesView key, BytesView message);

}  // namespace onion::crypto
