#include "crypto/simrsa.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "crypto/rc4.hpp"
#include "crypto/sha256.hpp"

namespace onion::crypto {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  // GCC/Clang extension; the guide-sanctioned escape hatch for 64x64
  // modular products without a bignum dependency.
  __extension__ using u128 = unsigned __int128;
  return static_cast<std::uint64_t>(static_cast<u128>(a) * b % m);
}

// Extended Euclid for the modular inverse of a modulo m (a, m coprime).
std::uint64_t modinv(std::uint64_t a, std::uint64_t m) {
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m),
               new_r = static_cast<std::int64_t>(a);
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    t -= q * new_t;
    std::swap(t, new_t);
    r -= q * new_r;
    std::swap(r, new_r);
  }
  ONION_ENSURES(r == 1);  // caller guarantees coprimality
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    a %= b;
    std::swap(a, b);
  }
  return a;
}

// Random odd 31-bit prime (top bit set so products are ~62 bits).
std::uint64_t random_prime31(Rng& rng) {
  for (;;) {
    std::uint64_t candidate = rng.uniform_in(1ULL << 30, (1ULL << 31) - 1);
    candidate |= 1;  // odd
    if (is_prime_u64(candidate)) return candidate;
  }
}

}  // namespace

std::uint64_t modpow_u64(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t mod) {
  ONION_EXPECTS(mod > 0);
  if (mod == 1) return 0;
  std::uint64_t result = 1;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, mod);
    base = mulmod(base, base, mod);
    exp >>= 1;
  }
  return result;
}

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller–Rabin for 64-bit integers with the standard base
  // set {2,3,5,7,11,13,17,19,23,29,31,37}.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = modpow_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Bytes RsaPublicKey::serialize() const {
  Bytes out = be64(n);
  append(out, be64(e));
  append(out, be64(static_cast<std::uint64_t>(nominal_bits)));
  return out;
}

RsaKeyPair rsa_generate(Rng& rng, int nominal_bits) {
  ONION_EXPECTS(nominal_bits > 0);
  constexpr std::uint64_t kPublicExponent = 65537;
  for (;;) {
    const std::uint64_t p = random_prime31(rng);
    const std::uint64_t q = random_prime31(rng);
    if (p == q) continue;
    const std::uint64_t phi = (p - 1) * (q - 1);
    if (gcd_u64(kPublicExponent, phi) != 1) continue;
    RsaKeyPair key;
    key.pub.n = p * q;
    key.pub.e = kPublicExponent;
    key.pub.nominal_bits = nominal_bits;
    key.d = modinv(kPublicExponent, phi);
    return key;
  }
}

namespace {
// SHA-256(message) folded into the signing modulus.
std::uint64_t message_representative(BytesView message, std::uint64_t n) {
  const Sha256Digest digest = Sha256::hash(message);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | digest[static_cast<std::size_t>(i)];
  return v % n;
}
}  // namespace

RsaSignature rsa_sign(const RsaKeyPair& key, BytesView message) {
  return modpow_u64(message_representative(message, key.pub.n), key.d,
                    key.pub.n);
}

bool rsa_verify(const RsaPublicKey& pub, BytesView message,
                RsaSignature sig) {
  if (pub.n == 0) return false;
  return modpow_u64(sig, pub.e, pub.n) ==
         message_representative(message, pub.n);
}

std::uint64_t rsa_encrypt_value(const RsaPublicKey& pub, std::uint64_t value) {
  ONION_EXPECTS(value < pub.n);
  return modpow_u64(value, pub.e, pub.n);
}

std::uint64_t rsa_decrypt_value(const RsaKeyPair& key, std::uint64_t value) {
  ONION_EXPECTS(value < key.pub.n);
  return modpow_u64(value, key.d, key.pub.n);
}

Bytes rsa_hybrid_encrypt(const RsaPublicKey& pub, BytesView plaintext,
                         Rng& rng) {
  const std::uint64_t session = rng.uniform(pub.n);
  const std::uint64_t wrapped = rsa_encrypt_value(pub, session);
  const Sha256Digest stream_key = Sha256::hash(be64(session));
  Rc4 cipher(BytesView(stream_key.data(), stream_key.size()));
  Bytes out = be64(wrapped);
  append(out, cipher.process(plaintext));
  return out;
}

Bytes rsa_hybrid_decrypt(const RsaKeyPair& key, BytesView ciphertext) {
  if (ciphertext.size() < 8)
    throw std::invalid_argument("rsa_hybrid_decrypt: ciphertext too short");
  const std::uint64_t wrapped = read_be64(ciphertext);
  if (wrapped >= key.pub.n)
    throw std::invalid_argument("rsa_hybrid_decrypt: value out of range");
  const std::uint64_t session = rsa_decrypt_value(key, wrapped);
  const Sha256Digest stream_key = Sha256::hash(be64(session));
  Rc4 cipher(BytesView(stream_key.data(), stream_key.size()));
  return cipher.process(ciphertext.subspan(8));
}

}  // namespace onion::crypto
