#include "crypto/hmac.hpp"

namespace onion::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;  // both SHA-1 and SHA-256

// Shared HMAC skeleton: Digest is the hash's output array type, Hasher the
// incremental hash class.
template <typename Hasher, typename Digest>
Digest hmac_impl(BytesView key, BytesView message) {
  Bytes key_block(kBlockSize, 0);
  if (key.size() > kBlockSize) {
    Hasher hasher;
    hasher.update(key);
    const Digest digest = hasher.finalize();
    std::copy(digest.begin(), digest.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  Bytes inner_pad(kBlockSize), outer_pad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = key_block[i] ^ 0x36;
    outer_pad[i] = key_block[i] ^ 0x5c;
  }

  Hasher inner;
  inner.update(inner_pad);
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Hasher outer;
  outer.update(outer_pad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}
}  // namespace

Sha256Digest hmac_sha256(BytesView key, BytesView message) {
  return hmac_impl<Sha256, Sha256Digest>(key, message);
}

Sha1Digest hmac_sha1(BytesView key, BytesView message) {
  return hmac_impl<Sha1, Sha1Digest>(key, message);
}

}  // namespace onion::crypto
