#include "crypto/sha1.hpp"

#include <cstring>

namespace onion::crypto {

namespace {
std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xefcdab89u;
  h_[2] = 0x98badcfeu;
  h_[3] = 0x10325476u;
  h_[4] = 0xc3d2e1f0u;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::update(BytesView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finalize() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) update(BytesView(&zero, 1));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(BytesView(len_bytes, 8));

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Sha1Digest Sha1::hash(BytesView data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finalize();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = static_cast<std::uint32_t>(block[4 * t]) << 24 |
           static_cast<std::uint32_t>(block[4 * t + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * t + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t)
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Bytes digest_bytes(const Sha1Digest& d) { return Bytes(d.begin(), d.end()); }

}  // namespace onion::crypto
