#include "crypto/kdf.hpp"

#include "crypto/hmac.hpp"

namespace onion::crypto {

Bytes derive_bytes(BytesView secret, std::string_view label,
                   BytesView context) {
  const Bytes info = concat(to_bytes(label), context);
  const Sha256Digest mac = hmac_sha256(secret, info);
  return Bytes(mac.begin(), mac.end());
}

RsaKeyPair rotated_service_key(const RsaPublicKey& cnc_key, BytesView kb,
                               std::uint64_t period_index) {
  // H(K_B, i_p): the per-period secret only the bot and the C&C can form.
  const Bytes period_secret =
      derive_bytes(kb, "onionbot-rotation", be64(period_index));
  // Bind to PK_CC so distinct botnets derive distinct identities even if a
  // K_B were ever reused, then expand into an RNG seed for keygen.
  const Bytes seed_material =
      derive_bytes(period_secret, "onionbot-service-key",
                   cnc_key.serialize());
  Rng seeded(read_be64(seed_material));
  return rsa_generate(seeded, /*nominal_bits=*/1024);
}

}  // namespace onion::crypto
