// NetFlow-level C&C channel detection (paper §II cites DISCLOSURE and
// BotFinder): no payload inspection, only flow metadata. C&C beacons are
// machine-generated, so per-(src,dst) flow series show
//
//   1. near-constant flow sizes (a human's page loads vary by 100x), and
//   2. timer-driven inter-arrival regularity.
//
// Both are measured as coefficients of variation (stddev/mean); a pair
// whose flows are numerous, size-stable, and clock-regular is a beacon
// channel, and its source is flagged.
//
// Against OnionBots the features degrade by construction: every flow to
// a guard relay multiplexes heartbeats, NoN shares, rendezvous setup,
// and relayed third-party broadcast cells, with per-bot jitter on every
// timer. The residual weak regularity is shared by benign Tor clients
// (circuit maintenance is timer-driven too), so any threshold that flags
// the bots flags the legitimate Tor users with them — the paper's
// point that mitigation collapses into blocking Tor wholesale.
#pragma once

#include <vector>

#include "detection/telemetry.hpp"

namespace onion::detection {

/// Coefficient of variation (stddev/mean, sample variance); 0 for
/// degenerate input (< 2 samples or non-positive mean). Exported so the
/// streaming flow scorer (detection/replay_grid.hpp) computes CVs with
/// the *same arithmetic* as this batch detector — the differential
/// tests assert exact flagged-set equality, not approximate.
double coefficient_of_variation(const std::vector<double>& xs);

struct FlowDetectorConfig {
  /// Minimum flows on a (src,dst) pair before judging it.
  std::size_t min_flows = 12;
  /// Coefficient of variation of flow sizes below which sizes count as
  /// machine-constant.
  double size_cv_threshold = 0.25;
  /// Coefficient of variation of inter-arrival gaps below which timing
  /// counts as timer-driven.
  double gap_cv_threshold = 0.45;
};

/// Per-channel features, exposed for tests and the bench printout.
struct ChannelFeatures {
  HostId src = 0;
  HostId dst = 0;
  std::size_t flows = 0;
  double size_cv = 0.0;
  double gap_cv = 0.0;
};

/// Features for every (src,dst) pair meeting the minimum flow count.
std::vector<ChannelFeatures> channel_features(const TrafficTrace& trace,
                                              std::size_t min_flows);

/// Flags sources owning at least one beacon-like channel.
DetectionResult detect_beacons(const TrafficTrace& trace,
                               const FlowDetectorConfig& config = {});

}  // namespace onion::detection
