#include "detection/replay.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace onion::detection {

namespace {

using scenario::CampaignEvent;
using scenario::CampaignTrace;
using scenario::TraceEventKind;
using scenario::TraceSource;

/// One mapped campaign bot: its monitored-host identity, sticky guard
/// set, and observation-clamped lifetime.
struct BotState {
  HostId host = 0;
  std::array<HostId, 3> guards{};
  SimTime birth = 0;
  SimTime death = 0;
};

}  // namespace

ReplayResult replay_trace(const TraceSource& campaign,
                          const ReplayConfig& config) {
  ONION_EXPECTS(campaign.began());
  const SimDuration window =
      config.window > 0 ? config.window : campaign.horizon();
  ONION_EXPECTS(window > 0);

  Rng rng(config.seed);
  ReplayResult out;
  TrafficTrace& trace = out.trace;
  HostId next = config.first_host;

  // Benign background first (and its Tor relay registry, shared by every
  // Tor-speaking population — defenders see one consensus).
  TrafficConfig bg;
  bg.window = window;
  bg.benign_web = config.benign_web;
  bg.benign_tor = config.benign_tor;
  bg.tor_relays = config.tor_relays;
  bg.tor_mean_gap = config.benign_tor_mean_gap;
  const BenignPopulation benign = emit_benign(trace, bg, next, rng);
  out.benign_web_hosts = benign.web_hosts;
  out.benign_tor_users = benign.tor_users;

  // Co-resident legacy families: present for the whole window, exactly
  // the populations the paper's evolution story leaves behind.
  if (config.centralized_bots > 0)
    out.centralized_bots = emit_centralized_bots(
        trace, config.centralized_bots, window, next, rng);
  if (config.dga_bots > 0)
    out.dga_bots = emit_dga_bots(trace, config.dga_bots, window, next, rng);
  if (config.fastflux_bots > 0)
    out.fastflux_bots =
        emit_fastflux_bots(trace, config.fastflux_bots, window, next, rng);
  if (config.p2p_bots > 0)
    out.p2p_bots = emit_p2p_bots(trace, config.p2p_bots, window, next, rng);

  if (config.max_onion_bots == 0) return out;  // legacy/benign-only rows

  std::vector<scenario::BotLifetime> lifetimes = campaign.lifetimes();
  if (lifetimes.size() > config.max_onion_bots)
    lifetimes.resize(config.max_onion_bots);  // oldest bots first
  if (lifetimes.empty()) return out;

  std::vector<HostId> relays = benign.relays;
  if (relays.empty()) {
    ONION_EXPECTS(config.tor_relays > 0);
    relays = register_tor_relays(trace, config.tor_relays, next);
  }

  // Steady-state emission: each bot browses (its human owner is still at
  // the keyboard) and heartbeats into its guards while alive. The clamp
  // to the observation window also drops bots born past its end.
  std::unordered_map<graph::NodeId, std::size_t> bot_index;
  std::vector<BotState> bots;
  bots.reserve(lifetimes.size());
  out.onion_bots.reserve(lifetimes.size());
  for (const scenario::BotLifetime& life : lifetimes) {
    if (life.birth >= window) continue;  // never observable: no host
    BotState b;
    b.host = next++;
    trace.hosts.push_back(b.host);
    trace.infected.push_back(b.host);
    out.onion_bots.push_back(b.host);
    b.guards = pick_guards(relays, rng);
    b.birth = std::min<SimTime>(life.birth, window);
    b.death = std::min<SimTime>(life.death, window);
    emit_browsing(trace, b.host, b.birth, b.death, rng);
    emit_tor_client(trace, b.host, b.guards, b.birth, b.death,
                    config.onion_mean_gap, rng);
    bot_index.emplace(life.node, bots.size());
    bots.push_back(b);
  }

  // Event-driven emission: campaign activity surfaces only as extra
  // cells into the acting bot's guards — bootstrap peering (both the
  // requester's introduction and the target's answer ride circuits) and
  // SOAP rounds at the captured bot. Leaves and takedowns need no
  // emission; the lifetime clamp already went dark at the right time.
  const auto cell_from = [&](std::uint64_t node, SimTime at) {
    const auto it = bot_index.find(static_cast<graph::NodeId>(node));
    if (it == bot_index.end()) return;  // subsampled out
    const BotState& b = bots[it->second];
    if (at < b.birth || at >= b.death) return;
    trace.flows.push_back(tor_cell_flow(
        b.host, b.guards[rng.uniform(b.guards.size())], at, rng));
  };
  graph::NodeId soap_captured = graph::kInvalidNode;
  campaign.for_each_event([&](const CampaignEvent& e) {
    switch (e.kind) {
      case TraceEventKind::Peering:
        cell_from(e.a, e.at);
        cell_from(e.b, e.at);
        break;
      case TraceEventKind::SoapCapture:
        soap_captured = static_cast<graph::NodeId>(e.a);
        break;
      case TraceEventKind::SoapRound:
        if (soap_captured != graph::kInvalidNode)
          cell_from(soap_captured, e.at);
        break;
      case TraceEventKind::HealPeering:
        // Charged DDSR healing is real peer traffic: both the repair
        // request and its answer ride Tor circuits, exactly like
        // bootstrap peering above.
        cell_from(e.a, e.at);
        cell_from(e.b, e.at);
        break;
      case TraceEventKind::Join:
      case TraceEventKind::Leave:
      case TraceEventKind::Takedown:
      case TraceEventKind::WaveStart:       // attacker-side bookkeeping:
      case TraceEventKind::AdaptiveRefresh: // no bot emits anything
        break;
    }
  });
  return out;
}

ReplayResult replay_trace(const CampaignTrace& campaign,
                          const ReplayConfig& config) {
  return replay_trace(static_cast<const TraceSource&>(campaign), config);
}

GroundTruth replay_ground_truth(const ReplayResult& result) {
  GroundTruth truth;
  const auto add = [&truth](const char* name,
                            const std::vector<HostId>& hosts) {
    if (!hosts.empty())
      truth.populations.push_back(GroundTruth::Population{name, hosts});
  };
  add("onion", result.onion_bots);
  add("centralized", result.centralized_bots);
  add("dga", result.dga_bots);
  add("fastflux", result.fastflux_bots);
  add("p2p", result.p2p_bots);
  add("benign_web", result.benign_web_hosts);
  add("benign_tor", result.benign_tor_users);
  return truth;
}

double flagged_fraction(const DetectionResult& result,
                        const std::vector<HostId>& population) {
  if (population.empty()) return 0.0;
  const std::unordered_set<HostId> flagged(result.flagged.begin(),
                                           result.flagged.end());
  std::size_t hits = 0;
  for (const HostId h : population)
    if (flagged.count(h) > 0) ++hits;
  return static_cast<double>(hits) / static_cast<double>(population.size());
}

}  // namespace onion::detection
