// P2P botnet detection from the communication graph (paper §II cites
// BotGrep, Zhang et al., Coskun et al.): build the who-talks-to-whom
// graph from flow records, discard traffic to well-known server
// infrastructure, and look for hosts embedded in a mesh — monitored
// hosts exchanging flows with several *other monitored hosts* that
// themselves interconnect (mutual-contacts structure). Client-server
// traffic is star-shaped and never forms such meshes.
//
// The OnionBot evasion is structural: bot-to-bot links exist only as
// Tor circuits, so the observable graph contains exactly (bot -> guard
// relay) stars — the same stars benign Tor clients produce. The mesh the
// detector needs is invisible end to end.
#pragma once

#include "detection/telemetry.hpp"

namespace onion::detection {

struct P2pDetectorConfig {
  /// Minimum distinct monitored peers a host must exchange flows with.
  std::size_t min_peer_degree = 3;
  /// Minimum fraction of a host's peers that also talk to each other
  /// (local clustering over the monitored-host graph).
  double min_peer_interconnection = 0.05;
  /// Flows below this many bytes in both directions total are ignored
  /// (port scans, stray datagrams).
  std::size_t min_pair_bytes = 50;
};

/// Per-host mesh features, exposed for tests and the bench printout.
struct MeshFeatures {
  HostId host = 0;
  /// Distinct monitored hosts this host exchanges flows with.
  std::size_t peer_degree = 0;
  /// Fraction of peer pairs that are themselves connected.
  double peer_interconnection = 0.0;
};

/// Features over the monitored-host communication graph. Flows to hosts
/// outside `trace.hosts` (public servers, Tor relays) are excluded, as
/// the published systems do — servers talk to everyone and would drown
/// the signal.
std::vector<MeshFeatures> mesh_features(const TrafficTrace& trace,
                                        std::size_t min_pair_bytes);

/// Flags hosts sitting inside a peer mesh.
DetectionResult detect_p2p(const TrafficTrace& trace,
                           const P2pDetectorConfig& config = {});

}  // namespace onion::detection
