#include "detection/dga_detector.hpp"

#include <array>
#include <cmath>
#include <map>

namespace onion::detection {

double name_entropy(const std::string& qname) {
  // Strip everything from the first dot: only the generated label varies.
  const std::size_t dot = qname.find('.');
  const std::size_t len = dot == std::string::npos ? qname.size() : dot;
  if (len == 0) return 0.0;

  std::array<std::size_t, 256> counts{};
  for (std::size_t i = 0; i < len; ++i)
    ++counts[static_cast<unsigned char>(qname[i])];

  double entropy = 0.0;
  const double n = static_cast<double>(len);
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::vector<DgaFeatures> dga_features(const TrafficTrace& trace) {
  struct Accum {
    std::size_t queries = 0;
    std::size_t nxdomain = 0;
    double failed_entropy_sum = 0.0;
  };
  std::map<HostId, Accum> per_host;
  for (const DnsRecord& r : trace.dns) {
    Accum& a = per_host[r.client];
    ++a.queries;
    if (r.nxdomain) {
      ++a.nxdomain;
      a.failed_entropy_sum += name_entropy(r.qname);
    }
  }

  std::vector<DgaFeatures> out;
  out.reserve(per_host.size());
  for (const auto& [host, a] : per_host) {
    DgaFeatures f;
    f.host = host;
    f.queries = a.queries;
    f.nxdomain_ratio =
        static_cast<double>(a.nxdomain) / static_cast<double>(a.queries);
    f.failed_name_entropy =
        a.nxdomain == 0
            ? 0.0
            : a.failed_entropy_sum / static_cast<double>(a.nxdomain);
    out.push_back(f);
  }
  return out;
}

DetectionResult detect_dga(const TrafficTrace& trace,
                           const DgaDetectorConfig& config) {
  DetectionResult result;
  for (const DgaFeatures& f : dga_features(trace)) {
    if (f.queries < config.min_queries) continue;
    if (f.nxdomain_ratio < config.nxdomain_ratio_threshold) continue;
    if (f.failed_name_entropy < config.entropy_threshold) continue;
    result.flagged.push_back(f.host);
  }
  return result;
}

}  // namespace onion::detection
