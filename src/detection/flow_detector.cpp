#include "detection/flow_detector.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace onion::detection {

double coefficient_of_variation(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  return std::sqrt(var) / mean;
}

std::vector<ChannelFeatures> channel_features(const TrafficTrace& trace,
                                              std::size_t min_flows) {
  struct Series {
    std::vector<double> sizes;
    std::vector<double> times;
  };
  std::map<std::pair<HostId, HostId>, Series> channels;
  for (const FlowRecord& f : trace.flows) {
    Series& s = channels[{f.src, f.dst}];
    s.sizes.push_back(static_cast<double>(f.bytes));
    s.times.push_back(static_cast<double>(f.at));
  }

  std::vector<ChannelFeatures> out;
  for (auto& [key, s] : channels) {
    if (s.sizes.size() < min_flows) continue;
    std::sort(s.times.begin(), s.times.end());
    std::vector<double> gaps;
    gaps.reserve(s.times.size() - 1);
    for (std::size_t i = 1; i < s.times.size(); ++i)
      gaps.push_back(s.times[i] - s.times[i - 1]);

    ChannelFeatures f;
    f.src = key.first;
    f.dst = key.second;
    f.flows = s.sizes.size();
    f.size_cv = coefficient_of_variation(s.sizes);
    f.gap_cv = coefficient_of_variation(gaps);
    out.push_back(f);
  }
  return out;
}

DetectionResult detect_beacons(const TrafficTrace& trace,
                               const FlowDetectorConfig& config) {
  DetectionResult result;
  std::set<HostId> flagged;
  for (const ChannelFeatures& f :
       channel_features(trace, config.min_flows)) {
    if (f.size_cv < config.size_cv_threshold &&
        f.gap_cv < config.gap_cv_threshold)
      flagged.insert(f.src);
  }
  result.flagged.assign(flagged.begin(), flagged.end());
  return result;
}

}  // namespace onion::detection
