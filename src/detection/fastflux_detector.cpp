#include "detection/fastflux_detector.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace onion::detection {

std::vector<FluxFeatures> flux_features(const TrafficTrace& trace) {
  struct Accum {
    std::set<std::uint32_t> ips;
    std::size_t answers = 0;
    double ttl_sum = 0.0;
  };
  std::map<std::string, Accum> per_name;
  for (const DnsRecord& r : trace.dns) {
    if (r.nxdomain) continue;
    Accum& a = per_name[r.qname];
    ++a.answers;
    a.ips.insert(r.resolved);
    a.ttl_sum += static_cast<double>(r.ttl);
  }

  std::vector<FluxFeatures> out;
  out.reserve(per_name.size());
  for (const auto& [name, a] : per_name) {
    FluxFeatures f;
    f.qname = name;
    f.answers = a.answers;
    f.distinct_ips = a.ips.size();
    f.mean_ttl = a.ttl_sum / static_cast<double>(a.answers);
    out.push_back(f);
  }
  return out;
}

std::vector<std::string> fluxed_domains(const TrafficTrace& trace,
                                        const FluxDetectorConfig& config) {
  std::vector<std::string> out;
  for (const FluxFeatures& f : flux_features(trace)) {
    if (f.answers < config.min_answers) continue;
    if (f.distinct_ips <= config.distinct_ips_threshold) continue;
    if (f.mean_ttl >= config.ttl_threshold) continue;
    out.push_back(f.qname);
  }
  return out;
}

DetectionResult detect_fastflux(const TrafficTrace& trace,
                                const FluxDetectorConfig& config) {
  const std::vector<std::string> bad = fluxed_domains(trace, config);
  const std::set<std::string> bad_set(bad.begin(), bad.end());

  DetectionResult result;
  std::set<HostId> flagged;
  for (const DnsRecord& r : trace.dns)
    if (!r.nxdomain && bad_set.count(r.qname) > 0) flagged.insert(r.client);
  result.flagged.assign(flagged.begin(), flagged.end());
  return result;
}

}  // namespace onion::detection
