// Synthetic traffic generators for the detection experiments: one per
// botnet architecture the paper surveys (Section II), plus benign
// background. Each generator emits the telemetry an on-path defender
// would actually record over an observation window — the models encode
// the published behavioural signatures:
//
//   Centralized HTTP  fixed C&C domain, periodic polling (GT-Bots,
//                     Clickbot.a style)
//   DGA               hundreds of algorithmically generated lookups per
//                     period, almost all NXDOMAIN (Torpig, Conficker)
//   Fast-flux         one domain, many short-TTL A records in rotation
//                     (single flux; honeynet project description)
//   P2P plaintext     unencrypted bot-to-bot gossip with a recognizable
//                     size signature (Storm/Stormnet style)
//   OnionBot          nothing but encrypted, fixed-size-cell flows to
//                     public Tor relays; no DNS at all (.onion names
//                     never touch the resolver)
//
// Benign background mixes normal web browsing and — crucially for the
// false-positive story — legitimate Tor users, who look exactly like
// OnionBots from the flow log.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "detection/telemetry.hpp"

namespace onion::detection {

/// Shared workload parameters.
struct TrafficConfig {
  /// Observation window.
  SimDuration window = 24 * kHour;
  /// Infected population.
  std::size_t bots = 40;
  /// Benign web-browsing hosts.
  std::size_t benign_web = 120;
  /// Benign Tor users (browse through Tor; no botnet involvement).
  std::size_t benign_tor = 20;
  /// Simulated public Tor relay count (consensus size).
  std::size_t tor_relays = 64;
  /// First HostId to allocate (so traces can be composed).
  HostId first_host = 0;
};

/// Benign background only (no infected hosts).
TrafficTrace benign_background(const TrafficConfig& config, Rng& rng);

/// Centralized HTTP C&C: every bot resolves the (single) C&C domain and
/// polls it on a timer.
TrafficTrace centralized_http_traffic(const TrafficConfig& config, Rng& rng);

/// DGA rendezvous: each bot walks the day's generated domain list until
/// the one registered name answers; the rest are NXDOMAIN.
TrafficTrace dga_traffic(const TrafficConfig& config, Rng& rng);

/// Fast-flux C&C: one domain whose A records rotate through a large,
/// short-TTL address pool (the compromised-proxy layer).
TrafficTrace fastflux_traffic(const TrafficConfig& config, Rng& rng);

/// Unencrypted peer-to-peer C&C: bots gossip directly with each other;
/// every link is visible in the flow log with a plaintext payload.
TrafficTrace p2p_plain_traffic(const TrafficConfig& config, Rng& rng);

/// OnionBot: bots speak only to known Tor relays in fixed 512-byte
/// cells over encrypted channels; no DNS records exist.
TrafficTrace onionbot_traffic(const TrafficConfig& config, Rng& rng);

}  // namespace onion::detection
