// Synthetic traffic generators for the detection experiments: one per
// botnet architecture the paper surveys (Section II), plus benign
// background. Each generator emits the telemetry an on-path defender
// would actually record over an observation window — the models encode
// the published behavioural signatures:
//
//   Centralized HTTP  fixed C&C domain, periodic polling (GT-Bots,
//                     Clickbot.a style)
//   DGA               hundreds of algorithmically generated lookups per
//                     period, almost all NXDOMAIN (Torpig, Conficker)
//   Fast-flux         one domain, many short-TTL A records in rotation
//                     (single flux; honeynet project description)
//   P2P plaintext     unencrypted bot-to-bot gossip with a recognizable
//                     size signature (Storm/Stormnet style)
//   OnionBot          nothing but encrypted, fixed-size-cell flows to
//                     public Tor relays; no DNS at all (.onion names
//                     never touch the resolver)
//
// Benign background mixes normal web browsing and — crucially for the
// false-positive story — legitimate Tor users, who look exactly like
// OnionBots from the flow log.
//
// Two layers: the classic one-shot generators (each builds benign
// background plus one infected population), and underneath them the
// composable population emitters the campaign-replay synthesizer
// (detection/replay.hpp) stacks into co-resident multi-family traces.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "detection/telemetry.hpp"

namespace onion::detection {

/// Shared workload parameters.
struct TrafficConfig {
  /// Observation window.
  SimDuration window = 24 * kHour;
  /// Infected population.
  std::size_t bots = 40;
  /// Benign web-browsing hosts.
  std::size_t benign_web = 120;
  /// Benign Tor users (browse through Tor; no botnet involvement).
  std::size_t benign_tor = 20;
  /// Simulated public Tor relay count (consensus size).
  std::size_t tor_relays = 64;
  /// Mean gap between a benign Tor user's guard contacts.
  SimDuration tor_mean_gap = 10 * kMinute;
  /// First HostId to allocate (so traces can be composed).
  HostId first_host = 0;
};

/// Benign background only (no infected hosts).
TrafficTrace benign_background(const TrafficConfig& config, Rng& rng);

/// Centralized HTTP C&C: every bot resolves the (single) C&C domain and
/// polls it on a timer.
TrafficTrace centralized_http_traffic(const TrafficConfig& config, Rng& rng);

/// DGA rendezvous: each bot walks the day's generated domain list until
/// the one registered name answers; the rest are NXDOMAIN.
TrafficTrace dga_traffic(const TrafficConfig& config, Rng& rng);

/// Fast-flux C&C: one domain whose A records rotate through a large,
/// short-TTL address pool (the compromised-proxy layer).
TrafficTrace fastflux_traffic(const TrafficConfig& config, Rng& rng);

/// Unencrypted peer-to-peer C&C: bots gossip directly with each other;
/// every link is visible in the flow log with a plaintext payload.
TrafficTrace p2p_plain_traffic(const TrafficConfig& config, Rng& rng);

/// OnionBot: bots speak only to known Tor relays in fixed 512-byte
/// cells over encrypted channels; no DNS records exist.
TrafficTrace onionbot_traffic(const TrafficConfig& config, Rng& rng);

/// --- composable population emitters ----------------------------------
// Each emitter appends one population to an existing trace, allocating
// monitored-host ids from `next` (advanced past the allocation), so
// arbitrary mixes — benign + several co-resident botnet families —
// compose into a single capture without id collisions. The one-shot
// generators above are thin wrappers over these with identical RNG draw
// order, so their outputs are unchanged.

/// Who the benign mix allocated — the per-population ground truth the
/// replay compositor reports FPRs against.
struct BenignPopulation {
  std::vector<HostId> web_hosts;
  std::vector<HostId> tor_users;
  std::vector<HostId> relays;
};

/// Benign mix: `config.benign_web` browsing hosts, plus (when
/// `config.benign_tor > 0`) a `config.tor_relays`-relay registry and
/// the legitimate Tor users.
BenignPopulation emit_benign(TrafficTrace& trace,
                             const TrafficConfig& config, HostId& next,
                             Rng& rng);

/// Registers `count` public Tor relay ids in the trace (defenders know
/// the consensus). Relays are destinations, not monitored hosts.
std::vector<HostId> register_tor_relays(TrafficTrace& trace,
                                        std::size_t count, HostId& next);

/// Web-browsing telemetry for one already-allocated host, active over
/// [start, stop).
void emit_browsing(TrafficTrace& trace, HostId host, SimTime start,
                   SimTime stop, Rng& rng);

/// A Tor client's sticky guard set (like real Tor, a small fixed set).
std::array<HostId, 3> pick_guards(const std::vector<HostId>& relays,
                                  Rng& rng);

/// One encrypted, cell-quantized flow into a guard — the only
/// observable an OnionBot or a legitimate Tor user ever produces.
FlowRecord tor_cell_flow(HostId host, HostId guard, SimTime at, Rng& rng);

/// Tor-client telemetry for one host over [start, stop): encrypted,
/// cell-quantized flows into its guard set, no meaningful DNS (Tor
/// resolves remotely).
void emit_tor_client(TrafficTrace& trace, HostId host,
                     const std::array<HostId, 3>& guards, SimTime start,
                     SimTime stop, SimDuration mean_gap, Rng& rng);

/// Infected populations, one per legacy family. Each allocates `bots`
/// fresh monitored hosts (recorded in trace.infected), lets the human
/// owner keep browsing, and emits the family's C&C signature over
/// [0, window). Returns the allocated bot ids.
std::vector<HostId> emit_centralized_bots(TrafficTrace& trace,
                                          std::size_t bots,
                                          SimDuration window, HostId& next,
                                          Rng& rng);
std::vector<HostId> emit_dga_bots(TrafficTrace& trace, std::size_t bots,
                                  SimDuration window, HostId& next,
                                  Rng& rng);
std::vector<HostId> emit_fastflux_bots(TrafficTrace& trace,
                                       std::size_t bots,
                                       SimDuration window, HostId& next,
                                       Rng& rng);
std::vector<HostId> emit_p2p_bots(TrafficTrace& trace, std::size_t bots,
                                  SimDuration window, HostId& next,
                                  Rng& rng);

}  // namespace onion::detection
