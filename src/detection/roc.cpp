#include "detection/roc.hpp"

#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "common/parallel.hpp"
#include "crypto/sha256.hpp"
#include "detection/dga_detector.hpp"
#include "detection/fastflux_detector.hpp"
#include "detection/flow_detector.hpp"
#include "detection/p2p_detector.hpp"
#include "detection/tor_flagger.hpp"

namespace onion::detection {

namespace {

/// Canonical number rendering for the params tuple: %g is deterministic
/// for the short decimal grid values this module sweeps.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string fmt(std::size_t v) { return std::to_string(v); }

/// Ground truth digested once per sweep (the 68 cells share it).
struct TruthIndex {
  std::unordered_set<HostId> infected;
  std::unordered_set<HostId> monitored;
  std::size_t benign = 0;  // monitored hosts that are not infected

  explicit TruthIndex(const TrafficTrace& trace)
      : infected(trace.infected.begin(), trace.infected.end()),
        monitored(trace.hosts.begin(), trace.hosts.end()) {
    // Pure count over the set: the sum is iteration-order independent,
    // and nothing ordered or fingerprinted is built from the traversal.
    // detlint:allow(D1 order-insensitive count)
    for (const HostId h : monitored)
      if (infected.count(h) == 0) ++benign;
  }
};

/// Scores one verdict against the trace's ground truth. TPR/FPR match
/// DetectionResult's definitions (rates over infected / benign monitored
/// hosts); precision adds the count view the ROC CSV reports. When
/// `families` names populations, each gets its flagged count appended —
/// the per-family resolution rides the same detector verdict.
RocPoint score(std::string detector, std::string params,
               const DetectionResult& result, const TruthIndex& truth,
               const GroundTruth& families) {
  RocPoint p;
  p.detector = std::move(detector);
  p.params = std::move(params);
  p.flagged = result.flagged.size();
  std::unordered_set<HostId> flagged_hosts;
  flagged_hosts.reserve(result.flagged.size());
  for (const HostId h : result.flagged) {
    flagged_hosts.insert(h);
    if (truth.infected.count(h) > 0)
      ++p.true_positives;
    else if (truth.monitored.count(h) > 0)
      ++p.false_positives;
  }
  p.families.reserve(families.populations.size());
  for (const GroundTruth::Population& pop : families.populations) {
    RocFamilyCount f;
    f.family = pop.name;
    f.population = pop.hosts.size();
    for (const HostId h : pop.hosts)
      if (flagged_hosts.count(h) > 0) ++f.flagged;
    p.families.push_back(std::move(f));
  }
  p.tpr = truth.infected.empty()
              ? 0.0
              : static_cast<double>(p.true_positives) /
                    static_cast<double>(truth.infected.size());
  p.fpr = truth.benign == 0
              ? 0.0
              : static_cast<double>(p.false_positives) /
                    static_cast<double>(truth.benign);
  p.precision = p.flagged == 0
                    ? 0.0
                    : static_cast<double>(p.true_positives) /
                          static_cast<double>(p.flagged);
  return p;
}

}  // namespace

Bytes serialize(const RocPoint& p) {
  Bytes out;
  out.reserve(8 * 7 + p.detector.size() + p.params.size());
  put_string(out, p.detector);
  put_string(out, p.params);
  put_u64(out, p.flagged);
  put_u64(out, p.true_positives);
  put_u64(out, p.false_positives);
  put_f64(out, p.tpr);
  put_f64(out, p.fpr);
  put_f64(out, p.precision);
  // Per-family block present iff the sweep was family-resolved: legacy
  // aggregate points keep their exact historical encoding, so committed
  // ROC fingerprints cannot move. D5-manifested as conditional.
  if (!p.families.empty()) {
    put_u64(out, p.families.size());
    for (const RocFamilyCount& f : p.families) {
      put_string(out, f.family);
      put_u64(out, f.flagged);
      put_u64(out, f.population);
    }
  }
  return out;
}

void RocReport::write_csv(std::FILE* out) const {
  std::fprintf(out,
               "detector,params,flagged,true_positives,false_positives,"
               "tpr,fpr,precision");
  // Family-resolved sweeps widen the schema; every point carries the
  // same population list (run() scores one GroundTruth), so the header
  // comes from the first point. Aggregate sweeps print the legacy CSV
  // byte-for-byte.
  if (!points.empty())
    for (const RocFamilyCount& f : points.front().families)
      std::fprintf(out, ",%s_flagged,%s_population", f.family.c_str(),
                   f.family.c_str());
  std::fprintf(out, "\n");
  for (const RocPoint& p : points) {
    std::fprintf(out, "%s,\"%s\",%zu,%zu,%zu,%.6f,%.6f,%.6f",
                 p.detector.c_str(), p.params.c_str(), p.flagged,
                 p.true_positives, p.false_positives, p.tpr, p.fpr,
                 p.precision);
    for (const RocFamilyCount& f : p.families)
      std::fprintf(out, ",%zu,%zu", f.flagged, f.population);
    std::fprintf(out, "\n");
  }
}

RocSweep::RocSweep(RocConfig config) : config_(std::move(config)) {
  // Enumeration order fixes the report's row order and therefore the
  // fingerprint: family by family, axes row-major as declared.
  for (const double entropy : config_.dga_entropy)
    for (const double ratio : config_.dga_nxdomain) {
      DgaDetectorConfig c;
      c.entropy_threshold = entropy;
      c.nxdomain_ratio_threshold = ratio;
      cells_.push_back({"dga-dns",
                        "entropy=" + fmt(entropy) + ",nxdomain=" + fmt(ratio),
                        [c](const TrafficTrace& t) { return detect_dga(t, c); }});
    }
  for (const std::size_t ips : config_.flux_distinct_ips)
    for (const double ttl : config_.flux_ttl) {
      FluxDetectorConfig c;
      c.distinct_ips_threshold = ips;
      c.ttl_threshold = ttl;
      cells_.push_back({"fast-flux",
                        "distinct_ips=" + fmt(ips) + ",ttl=" + fmt(ttl),
                        [c](const TrafficTrace& t) {
                          return detect_fastflux(t, c);
                        }});
    }
  for (const double size_cv : config_.flow_size_cv)
    for (const double gap_cv : config_.flow_gap_cv) {
      FlowDetectorConfig c;
      c.size_cv_threshold = size_cv;
      c.gap_cv_threshold = gap_cv;
      cells_.push_back({"flow-beacon",
                        "size_cv=" + fmt(size_cv) + ",gap_cv=" + fmt(gap_cv),
                        [c](const TrafficTrace& t) {
                          return detect_beacons(t, c);
                        }});
    }
  for (const std::size_t degree : config_.p2p_degree)
    for (const double inter : config_.p2p_interconnection) {
      P2pDetectorConfig c;
      c.min_peer_degree = degree;
      c.min_peer_interconnection = inter;
      cells_.push_back({"p2p-mesh",
                        "degree=" + fmt(degree) + ",interconnection=" +
                            fmt(inter),
                        [c](const TrafficTrace& t) { return detect_p2p(t, c); }});
    }
  for (const std::size_t min_flows : config_.tor_min_flows)
    cells_.push_back({"tor-flagger", "min_flows=" + fmt(min_flows),
                      [min_flows](const TrafficTrace& t) {
                        return detect_tor_users(t, min_flows);
                      }});
}

RocReport RocSweep::run(const TrafficTrace& trace) const {
  return run(trace, GroundTruth{});
}

RocReport RocSweep::run(const TrafficTrace& trace,
                        const GroundTruth& truth) const {
  RocReport report;
  report.points.resize(cells_.size());
  const auto start = std::chrono::steady_clock::now();
  const TruthIndex index(trace);

  // Detectors are pure functions of the (shared, read-only) trace, and
  // each point lands at its grid index — the sharding is invisible.
  report.threads_used = parallel_for_index(
      cells_.size(), config_.threads, [&](std::size_t i) {
        const Cell& cell = cells_[i];
        report.points[i] = score(cell.detector, cell.params,
                                 cell.detect(trace), index, truth);
      });

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  crypto::Sha256 hasher;
  for (const RocPoint& p : report.points) hasher.update(serialize(p));
  const crypto::Sha256Digest digest = hasher.finalize();
  report.fingerprint = to_hex(BytesView(digest.data(), digest.size()));
  return report;
}

}  // namespace onion::detection
