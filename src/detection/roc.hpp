// Threshold sweeps over a captured trace: grid-searches every detector
// family's tunables, scores each operating point against the trace's
// ground truth (TPR / FPR / precision), and fingerprints the whole
// sweep with a chained SHA-256 — the detection-side analogue of the
// scenario engine's snapshot-stream fingerprint, and the unit CI's
// golden-fingerprint guard diffs. Cells shard across the same
// atomic-index thread pool campaign grids use (common/parallel.hpp);
// results land at their grid index, so thread count never leaks into
// the CSV or the fingerprint.
//
// Run against a campaign-replayed trace (detection/replay.hpp) this
// reproduces the paper's Section II/VI argument as one sweep: every
// legacy family has operating points with high TPR at near-zero FPR,
// while for the OnionBot population no threshold of any detector
// separates bots from the benign Tor users sharing the trace.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "detection/telemetry.hpp"

namespace onion::detection {

/// Threshold grids, one axis pair (or single axis) per detector family.
/// An empty axis drops the family from the sweep.
struct RocConfig {
  std::vector<double> dga_entropy = {2.0, 2.5, 3.0, 3.5};
  std::vector<double> dga_nxdomain = {0.15, 0.35, 0.55, 0.75};

  std::vector<std::size_t> flux_distinct_ips = {5, 10, 20, 40};
  std::vector<double> flux_ttl = {120.0, 300.0, 600.0, 1200.0};

  std::vector<double> flow_size_cv = {0.1, 0.25, 0.5, 0.75};
  std::vector<double> flow_gap_cv = {0.2, 0.45, 0.7, 1.0};

  std::vector<std::size_t> p2p_degree = {2, 3, 4, 6};
  std::vector<double> p2p_interconnection = {0.01, 0.05, 0.2, 0.5};

  std::vector<std::size_t> tor_min_flows = {1, 3, 10, 30};

  /// Worker pool for the sweep; 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// One population's slice of an operating point: how many of its hosts
/// the detector flagged, out of how many were monitored. Populations
/// come from the replay's ground truth (detection/replay.hpp), so a
/// single sweep resolves per-family TPR (bot families) and per-source
/// FPR (benign web vs benign Tor) without re-running any detector.
struct RocFamilyCount {
  std::string family;  // "onion", "dga", "benign_tor", ...
  std::size_t flagged = 0;
  std::size_t population = 0;
};

/// Named host populations scored alongside the aggregate TPR/FPR. Order
/// is preserved into RocPoint::families (and so into the fingerprint);
/// an empty truth (the default) reproduces the legacy aggregate-only
/// sweep byte-for-byte.
struct GroundTruth {
  struct Population {
    std::string name;
    std::vector<HostId> hosts;
  };
  std::vector<Population> populations;
};

/// One operating point: a detector family at one threshold tuple,
/// scored against the trace's ground truth.
struct RocPoint {
  std::string detector;  // "dga-dns", "fast-flux", "flow-beacon", ...
  std::string params;    // canonical "key=value,key=value" tuple
  std::size_t flagged = 0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  double tpr = 0.0;
  double fpr = 0.0;
  double precision = 0.0;
  /// Per-population counts, in GroundTruth order; empty on aggregate
  /// sweeps and serialized only when present, so legacy points (and the
  /// goldens hashing them) encode exactly as before.
  std::vector<RocFamilyCount> families;
};

/// Canonical serialization of one point (strings length-prefixed,
/// doubles bit-cast) — the unit the sweep fingerprint hashes.
Bytes serialize(const RocPoint& p);

/// The sweep's outcome, points in grid order (family by family, axes in
/// row-major declaration order — never completion order).
struct RocReport {
  std::vector<RocPoint> points;
  /// Chained SHA-256 (hex) over the serialized points. Equal trace +
  /// equal config reproduce it byte-for-byte at any thread count.
  std::string fingerprint;
  std::size_t threads_used = 0;
  double wall_seconds = 0.0;  // informational; never fingerprinted

  /// One CSV row per point (plus a header).
  void write_csv(std::FILE* out) const;
};

/// The grid-search harness: construction enumerates the cells, run()
/// shards them over a thread pool and scores every operating point.
class RocSweep {
 public:
  explicit RocSweep(RocConfig config = {});

  std::size_t cell_count() const { return cells_.size(); }
  /// Aggregate sweep: TPR/FPR against trace.infected vs the benign rest.
  RocReport run(const TrafficTrace& trace) const;
  /// Family-resolved sweep: as above, plus per-population flagged counts
  /// (RocPoint::families) for every named population in `truth`.
  RocReport run(const TrafficTrace& trace, const GroundTruth& truth) const;

 private:
  struct Cell {
    std::string detector;
    std::string params;
    std::function<DetectionResult(const TrafficTrace&)> detect;
  };

  RocConfig config_;
  std::vector<Cell> cells_;
};

}  // namespace onion::detection
