// Multi-process replay grids over shared trace files: the replay-level
// twin of the campaign transport in scenario/runner.hpp. A recorded
// campaign trace (scenario/trace_io.hpp) is the shared input — workers
// on the same filesystem each open it read-only via TraceReader
// (O(window) memory, header+footer validated at open so a truncated
// copy fails fast) and publish one wire frame per (campaign, seed) cell
// into a results directory.
//
// Three entry points:
//
//   run_replay_worker_cells
//     The worker half: executes an explicit cell subset of a ReplayGrid
//     and atomically publishes one encoded ReplayGridCell frame per
//     cell. Serves both the gridworker binary's --replay-grid --worker
//     mode and the coordinator's forked children.
//
//   ReplayGridCoordinator
//     The fault-tolerant driver: forks workers, applies the per-cell
//     no-progress timeout, bounded-backoff retry, FaultPlan injection,
//     quarantine, and checkpoint/resume of scenario's
//     ProcessCellCoordinator to replay cells. The merged report's
//     fingerprint is byte-identical to in-process ReplayGrid::run —
//     tests/gridproc_test.cpp proves it under crash injection.
//
//   merge_replay_frames
//     The merge-only path: folds whatever valid frames a results
//     directory holds into a ReplayGridReport without executing
//     anything — the piece that lets N hosts shard a grid by hand
//     (disjoint --cells over a shared trace file) and any one of them
//     fold the directory afterwards. The combined fingerprint is
//     invariant to worker count, partition shape, and retry history
//     because it only ever covers completed cells' points in cell
//     order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detection/replay_grid.hpp"
#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

namespace onion::detection {

/// "replay_cell_000042.frame" — distinct from the campaign transport's
/// "cell_000042.frame" so the two grids can never collide in one
/// results directory.
std::string replay_cell_frame_filename(std::uint64_t cell_index);

/// Binds a ReplayGrid to scenario's generic process machinery: frames
/// are encoded ReplayGridCells, identity is (cell_index, campaign,
/// replay_seed, points-per-cell), accepted cells collect into a
/// cell-order table take_report() folds into a ReplayGridReport.
///
/// The merge-only constructor records the campaign *count* without any
/// trace sources; such a job can validate and collect frames but must
/// never be asked to execute a cell (run_cell aborts via ONION_EXPECTS).
class ReplayGridJob final : public scenario::CellJob {
 public:
  /// Executable job: one TraceSource per campaign, cells can run.
  ReplayGridJob(const ReplayGrid& grid,
                std::vector<const scenario::TraceSource*> campaigns);
  /// Merge-only job: frame validation and collection without sources.
  ReplayGridJob(const ReplayGrid& grid, std::size_t campaign_count);

  std::size_t size() const override;
  std::string frame_filename(std::uint64_t cell_index) const override;
  std::string cell_label(std::uint64_t cell_index) const override;
  std::uint64_t cell_seed(std::uint64_t cell_index) const override;
  Bytes run_cell(std::uint64_t cell_index) const override;
  bool accept_frame(std::uint64_t cell_index, BytesView framed,
                    std::string& error) override;

  /// Folds the accepted cells into a report: points are the completed
  /// cells' slices concatenated in cell order, and the fingerprint
  /// covers exactly those points — so a full collection reproduces the
  /// in-process ReplayGrid::run digest byte-for-byte.
  ReplayGridReport take_report();

 private:
  const ReplayGrid& grid_;
  std::vector<const scenario::TraceSource*> campaigns_;
  std::size_t campaign_count_ = 0;
  std::vector<ReplayGridCell> cells_;
  std::vector<bool> present_;
};

/// Worker half of the replay transport: runs `assignments` (with
/// deterministic fault injection) and atomically publishes one frame
/// per cell into `results_dir`.
void run_replay_worker_cells(
    const ReplayGrid& grid,
    std::vector<const scenario::TraceSource*> campaigns,
    const std::vector<scenario::CellAssignment>& assignments,
    const std::string& results_dir, const scenario::FaultPlan& faults = {});

/// Merge-only: folds the valid replay frames in `results_dir` into a
/// report. Missing or invalid cells land in failed_cells (attempts 0)
/// with the rejection reason; nothing is executed or retried.
ReplayGridReport merge_replay_frames(const ReplayGrid& grid,
                                     std::size_t campaign_count,
                                     const std::string& results_dir);

/// Fault-tolerant multi-process driver for a ReplayGrid, generic over
/// the same GridCoordinatorConfig as the campaign transport (workers,
/// retries, timeout, backoff, faults, resume).
class ReplayGridCoordinator {
 public:
  ReplayGridCoordinator(const ReplayGrid& grid,
                        std::vector<const scenario::TraceSource*> campaigns,
                        scenario::GridCoordinatorConfig config);

  /// Resumes over valid frames, executes the rest in forked workers,
  /// and merges. threads_used reports the worker count; retries,
  /// resumed_cells, and failed_cells carry the process history.
  ReplayGridReport run();

 private:
  const ReplayGrid& grid_;
  std::vector<const scenario::TraceSource*> campaigns_;
  scenario::GridCoordinatorConfig config_;
};

}  // namespace onion::detection
