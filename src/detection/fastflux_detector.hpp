// Fast-flux detection from resolver logs (paper §II; the Honeynet
// Project's "Know Your Enemy: Fast-Flux Service Networks"). The
// published fingerprint is per-*domain*, not per-host: a fluxed name
// accumulates an abnormal number of distinct A records at abnormally
// short TTLs. Hosts are flagged for contacting a fluxed domain.
//
// OnionBots never trip this either — there is no domain to flux; the
// rendezvous role fast-flux plays is subsumed by Tor hidden-service
// descriptors, which this detector cannot see.
#pragma once

#include <string>

#include "detection/telemetry.hpp"

namespace onion::detection {

struct FluxDetectorConfig {
  /// Distinct resolved addresses a single name must exceed.
  std::size_t distinct_ips_threshold = 10;
  /// Mean answer TTL (seconds) a fluxed name stays under.
  double ttl_threshold = 600.0;
  /// Minimum answered queries before judging a domain.
  std::size_t min_answers = 10;
};

/// Per-domain features, exposed for tests and the bench printout.
struct FluxFeatures {
  std::string qname;
  std::size_t answers = 0;
  std::size_t distinct_ips = 0;
  double mean_ttl = 0.0;
};

/// Computes features for every name with at least one answered query.
std::vector<FluxFeatures> flux_features(const TrafficTrace& trace);

/// Names judged fluxed under the config.
std::vector<std::string> fluxed_domains(const TrafficTrace& trace,
                                        const FluxDetectorConfig& config = {});

/// Flags every host that queried a fluxed name.
DetectionResult detect_fastflux(const TrafficTrace& trace,
                                const FluxDetectorConfig& config = {});

}  // namespace onion::detection
