// DGA detection from resolver logs (paper §II cites Antonakakis et al.,
// Yadav et al.): infected hosts issue bursts of algorithmically generated
// lookups, almost all of which fail. Two per-host features carry nearly
// all of the published signal:
//
//   1. NXDOMAIN ratio — generated names are mostly unregistered;
//   2. mean character entropy of failed query names — generated labels
//      are uniform-random-ish, while human names reuse a small alphabet
//      of syllables.
//
// A host is flagged when both exceed their thresholds with a minimum
// query volume. OnionBots never appear here at all: .onion resolution
// happens inside Tor and produces no resolver traffic — the detector's
// feature vector for them is empty.
#pragma once

#include "detection/telemetry.hpp"

namespace onion::detection {

/// Tunable thresholds; defaults calibrated on the synthetic workloads
/// (see detection_test for the calibration sweep).
struct DgaDetectorConfig {
  /// Minimum DNS queries before a host is judged at all.
  std::size_t min_queries = 20;
  /// NXDOMAIN fraction above which a host looks DGA-driven.
  double nxdomain_ratio_threshold = 0.35;
  /// Mean per-name character entropy (bits/char) of *failed* lookups.
  double entropy_threshold = 3.0;
};

/// Per-host feature vector, exposed for tests and the bench printout.
struct DgaFeatures {
  HostId host = 0;
  std::size_t queries = 0;
  double nxdomain_ratio = 0.0;
  double failed_name_entropy = 0.0;
};

/// Shannon entropy (bits/char) of a DNS label, label part only (the
/// public-suffix part carries no signal and would dilute it).
double name_entropy(const std::string& qname);

/// Computes features for every host with at least one query.
std::vector<DgaFeatures> dga_features(const TrafficTrace& trace);

/// Flags hosts per the config thresholds.
DetectionResult detect_dga(const TrafficTrace& trace,
                           const DgaDetectorConfig& config = {});

}  // namespace onion::detection
