// The blunt instrument (paper §VI / §IX): flag every host that talks to
// a known Tor relay. The consensus is public, so this "detector" is
// trivially implementable — and it does flag every OnionBot. It also
// flags every legitimate Tor user, which is the paper's conclusion in
// one function: "It is impossible for Internet Service Providers to
// effectively detect and mitigate such botnet, without blocking all Tor
// access."
#pragma once

#include "detection/telemetry.hpp"

namespace onion::detection {

/// Flags every monitored host with at least `min_flows` flows to a
/// known Tor relay.
DetectionResult detect_tor_users(const TrafficTrace& trace,
                                 std::size_t min_flows = 3);

}  // namespace onion::detection
