#include "detection/telemetry.hpp"

#include <algorithm>
#include <set>

namespace onion::detection {

void TrafficTrace::append(const TrafficTrace& other) {
  dns.insert(dns.end(), other.dns.begin(), other.dns.end());
  flows.insert(flows.end(), other.flows.begin(), other.flows.end());
  infected.insert(infected.end(), other.infected.begin(),
                  other.infected.end());
  hosts.insert(hosts.end(), other.hosts.begin(), other.hosts.end());
  known_tor_relays.insert(known_tor_relays.end(),
                          other.known_tor_relays.begin(),
                          other.known_tor_relays.end());
}

double DetectionResult::true_positive_rate(const TrafficTrace& trace) const {
  if (trace.infected.empty()) return 0.0;
  const std::set<HostId> flagged_set(flagged.begin(), flagged.end());
  std::size_t hits = 0;
  for (const HostId h : trace.infected)
    if (flagged_set.count(h) > 0) ++hits;
  return static_cast<double>(hits) /
         static_cast<double>(trace.infected.size());
}

double DetectionResult::false_positive_rate(
    const TrafficTrace& trace) const {
  const std::set<HostId> infected_set(trace.infected.begin(),
                                      trace.infected.end());
  std::size_t benign = 0;
  std::size_t false_hits = 0;
  const std::set<HostId> flagged_set(flagged.begin(), flagged.end());
  for (const HostId h : trace.hosts) {
    if (infected_set.count(h) > 0) continue;
    ++benign;
    if (flagged_set.count(h) > 0) ++false_hits;
  }
  if (benign == 0) return 0.0;
  return static_cast<double>(false_hits) / static_cast<double>(benign);
}

}  // namespace onion::detection
