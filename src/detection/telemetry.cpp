#include "detection/telemetry.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "crypto/sha256.hpp"

namespace onion::detection {

namespace {

/// Appends `src` onto `dst`, skipping ids `dst` already holds;
/// first-seen order is preserved so composition stays deterministic.
void append_unique(std::vector<HostId>& dst, const std::vector<HostId>& src) {
  std::unordered_set<HostId> seen(dst.begin(), dst.end());
  dst.reserve(dst.size() + src.size());
  for (const HostId h : src)
    if (seen.insert(h).second) dst.push_back(h);
}

Bytes serialize(const DnsRecord& r) {
  Bytes out;
  out.reserve(8 * 5 + 1 + r.qname.size());
  put_u64(out, r.client);
  put_string(out, r.qname);
  out.push_back(r.nxdomain ? 1 : 0);
  put_u64(out, r.ttl);
  put_u64(out, r.resolved);
  put_u64(out, r.at);
  return out;
}

Bytes serialize(const FlowRecord& f) {
  Bytes out;
  out.reserve(8 * 5 + 1);
  put_u64(out, f.src);
  put_u64(out, f.dst);
  put_u64(out, f.dst_port);
  put_u64(out, f.bytes);
  out.push_back(f.encrypted ? 1 : 0);
  put_u64(out, f.at);
  return out;
}

Bytes serialize(const std::vector<HostId>& hosts) {
  Bytes out;
  out.reserve(8 * (hosts.size() + 1));
  put_u64(out, hosts.size());
  for (const HostId h : hosts) put_u64(out, h);
  return out;
}

/// Feeds every record of `trace` through `consume` in canonical order;
/// serialize() and fingerprint() share this walk.
template <typename Consume>
void walk_canonical(const TrafficTrace& trace, Consume&& consume) {
  Bytes header;
  put_u64(header, trace.dns.size());
  put_u64(header, trace.flows.size());
  consume(header);
  for (const DnsRecord& r : trace.dns) consume(serialize(r));
  for (const FlowRecord& f : trace.flows) consume(serialize(f));
  consume(serialize(trace.infected));
  consume(serialize(trace.hosts));
  consume(serialize(trace.known_tor_relays));
}

}  // namespace

void TrafficTrace::append(const TrafficTrace& other) {
  dns.reserve(dns.size() + other.dns.size());
  dns.insert(dns.end(), other.dns.begin(), other.dns.end());
  flows.reserve(flows.size() + other.flows.size());
  flows.insert(flows.end(), other.flows.begin(), other.flows.end());
  append_unique(infected, other.infected);
  append_unique(hosts, other.hosts);
  append_unique(known_tor_relays, other.known_tor_relays);
}

Bytes serialize(const TrafficTrace& trace) {
  Bytes out;
  walk_canonical(trace, [&out](const Bytes& chunk) { append(out, chunk); });
  return out;
}

std::string fingerprint(const TrafficTrace& trace) {
  crypto::Sha256 hasher;
  walk_canonical(trace,
                 [&hasher](const Bytes& chunk) { hasher.update(chunk); });
  const crypto::Sha256Digest digest = hasher.finalize();
  return to_hex(BytesView(digest.data(), digest.size()));
}

double DetectionResult::true_positive_rate(const TrafficTrace& trace) const {
  if (trace.infected.empty()) return 0.0;
  const std::set<HostId> flagged_set(flagged.begin(), flagged.end());
  std::size_t hits = 0;
  for (const HostId h : trace.infected)
    if (flagged_set.count(h) > 0) ++hits;
  return static_cast<double>(hits) /
         static_cast<double>(trace.infected.size());
}

double DetectionResult::false_positive_rate(
    const TrafficTrace& trace) const {
  const std::set<HostId> infected_set(trace.infected.begin(),
                                      trace.infected.end());
  std::size_t benign = 0;
  std::size_t false_hits = 0;
  const std::set<HostId> flagged_set(flagged.begin(), flagged.end());
  for (const HostId h : trace.hosts) {
    if (infected_set.count(h) > 0) continue;
    ++benign;
    if (flagged_set.count(h) > 0) ++false_hits;
  }
  if (benign == 0) return 0.0;
  return static_cast<double>(false_hits) / static_cast<double>(benign);
}

}  // namespace onion::detection
