#include "detection/p2p_detector.hpp"

#include <map>
#include <set>

namespace onion::detection {

std::vector<MeshFeatures> mesh_features(const TrafficTrace& trace,
                                        std::size_t min_pair_bytes) {
  const std::set<HostId> monitored(trace.hosts.begin(), trace.hosts.end());

  // Undirected monitored-host graph with per-pair byte totals.
  std::map<std::pair<HostId, HostId>, std::size_t> pair_bytes;
  for (const FlowRecord& f : trace.flows) {
    if (f.src == f.dst) continue;
    if (monitored.count(f.src) == 0 || monitored.count(f.dst) == 0)
      continue;
    const auto key = f.src < f.dst ? std::make_pair(f.src, f.dst)
                                   : std::make_pair(f.dst, f.src);
    pair_bytes[key] += f.bytes;
  }

  std::map<HostId, std::set<HostId>> adjacency;
  for (const auto& [pair, bytes] : pair_bytes) {
    if (bytes < min_pair_bytes) continue;
    adjacency[pair.first].insert(pair.second);
    adjacency[pair.second].insert(pair.first);
  }

  std::vector<MeshFeatures> out;
  out.reserve(adjacency.size());
  for (const auto& [host, peers] : adjacency) {
    MeshFeatures f;
    f.host = host;
    f.peer_degree = peers.size();
    if (peers.size() >= 2) {
      std::size_t connected_pairs = 0;
      std::size_t total_pairs = 0;
      for (auto it = peers.begin(); it != peers.end(); ++it) {
        for (auto jt = std::next(it); jt != peers.end(); ++jt) {
          ++total_pairs;
          const auto a = adjacency.find(*it);
          if (a != adjacency.end() && a->second.count(*jt) > 0)
            ++connected_pairs;
        }
      }
      f.peer_interconnection =
          total_pairs == 0 ? 0.0
                           : static_cast<double>(connected_pairs) /
                                 static_cast<double>(total_pairs);
    }
    out.push_back(f);
  }
  return out;
}

DetectionResult detect_p2p(const TrafficTrace& trace,
                           const P2pDetectorConfig& config) {
  DetectionResult result;
  for (const MeshFeatures& f :
       mesh_features(trace, config.min_pair_bytes)) {
    if (f.peer_degree < config.min_peer_degree) continue;
    if (f.peer_interconnection < config.min_peer_interconnection) continue;
    result.flagged.push_back(f.host);
  }
  return result;
}

}  // namespace onion::detection
