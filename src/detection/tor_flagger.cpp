#include "detection/tor_flagger.hpp"

#include <map>
#include <set>

namespace onion::detection {

DetectionResult detect_tor_users(const TrafficTrace& trace,
                                 std::size_t min_flows) {
  const std::set<HostId> relays(trace.known_tor_relays.begin(),
                                trace.known_tor_relays.end());
  std::map<HostId, std::size_t> tor_flows;
  for (const FlowRecord& f : trace.flows)
    if (relays.count(f.dst) > 0) ++tor_flows[f.src];

  DetectionResult result;
  for (const auto& [host, count] : tor_flows)
    if (count >= min_flows) result.flagged.push_back(host);
  return result;
}

}  // namespace onion::detection
