#include "detection/replay_grid.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "crypto/sha256.hpp"
#include "detection/traffic.hpp"

namespace onion::detection {

namespace {

using scenario::CampaignEvent;
using scenario::TraceEventKind;
using scenario::TraceSource;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Streams one host's flows from a scratch trace. Grouping is by
/// ascending source id (std::map), so the feed order is deterministic
/// regardless of emission interleaving.
void feed_grouped(const TrafficTrace& scratch, FlowSink& sink,
                  std::uint64_t& flows) {
  std::map<HostId, std::vector<const FlowRecord*>> by_src;
  for (const FlowRecord& f : scratch.flows) by_src[f.src].push_back(&f);
  for (const auto& [src, records] : by_src) {
    for (const FlowRecord* f : records) sink.on_flow(*f);
    flows += records.size();
    sink.on_host_done(src);
  }
}

}  // namespace

StreamPopulations replay_trace_streaming(const TraceSource& campaign,
                                         const ReplayConfig& config,
                                         FlowSink& sink) {
  ONION_EXPECTS(campaign.began());
  const SimDuration window =
      config.window > 0 ? config.window : campaign.horizon();
  ONION_EXPECTS(window > 0);

  Rng rng(config.seed);
  StreamPopulations out;
  HostId next = config.first_host;

  // Stage 1 — benign background and legacy families, exactly as
  // replay_trace composes them (same emitters, same RNG draw order, so
  // the population host ids match the batch path's). These populations
  // are config-bounded, so a scratch trace holds them comfortably; what
  // must never be materialized is the campaign population below.
  ReplayResult pops;
  TrafficTrace& scratch = pops.trace;
  TrafficConfig bg;
  bg.window = window;
  bg.benign_web = config.benign_web;
  bg.benign_tor = config.benign_tor;
  bg.tor_relays = config.tor_relays;
  bg.tor_mean_gap = config.benign_tor_mean_gap;
  const BenignPopulation benign = emit_benign(scratch, bg, next, rng);
  pops.benign_web_hosts = benign.web_hosts;
  pops.benign_tor_users = benign.tor_users;
  if (config.centralized_bots > 0)
    pops.centralized_bots = emit_centralized_bots(
        scratch, config.centralized_bots, window, next, rng);
  if (config.dga_bots > 0)
    pops.dga_bots =
        emit_dga_bots(scratch, config.dga_bots, window, next, rng);
  if (config.fastflux_bots > 0)
    pops.fastflux_bots =
        emit_fastflux_bots(scratch, config.fastflux_bots, window, next, rng);
  if (config.p2p_bots > 0)
    pops.p2p_bots =
        emit_p2p_bots(scratch, config.p2p_bots, window, next, rng);

  // Campaign population setup (host ids assigned before any feeding so
  // the relay registry is complete when the sink first sees a flow).
  std::vector<scenario::BotLifetime> lifetimes;
  std::vector<HostId> relays = benign.relays;
  if (config.max_onion_bots > 0) {
    lifetimes = campaign.lifetimes();
    if (lifetimes.size() > config.max_onion_bots)
      lifetimes.resize(config.max_onion_bots);  // oldest bots first
    lifetimes.erase(
        std::remove_if(lifetimes.begin(), lifetimes.end(),
                       [&](const scenario::BotLifetime& life) {
                         return life.birth >= window;  // never observable
                       }),
        lifetimes.end());
    if (!lifetimes.empty() && relays.empty()) {
      ONION_EXPECTS(config.tor_relays > 0);
      relays = register_tor_relays(scratch, config.tor_relays, next);
    }
  }

  sink.on_relays(scratch.known_tor_relays);
  feed_grouped(scratch, sink, out.flows);

  if (!lifetimes.empty()) {
    // Host ids and per-bot event times up front: one forward event pass
    // collects only the cell-emitting events' timestamps (bootstrap and
    // healing peerings, SOAP rounds) — bounded by campaign activity,
    // never by the churn-dominated event count.
    std::map<graph::NodeId, HostId> bot_host;
    std::map<graph::NodeId, std::pair<SimTime, SimTime>> bot_window;
    pops.onion_bots.reserve(lifetimes.size());
    for (const scenario::BotLifetime& life : lifetimes) {
      const HostId host = next++;
      pops.onion_bots.push_back(host);
      bot_host.emplace(life.node, host);
      bot_window.emplace(life.node,
                         std::make_pair(std::min<SimTime>(life.birth, window),
                                        std::min<SimTime>(life.death, window)));
    }
    std::map<graph::NodeId, std::vector<SimTime>> cell_times;
    const auto note = [&](std::uint64_t node, SimTime at) {
      const auto it = bot_window.find(static_cast<graph::NodeId>(node));
      if (it == bot_window.end()) return;  // subsampled out
      if (at < it->second.first || at >= it->second.second) return;
      cell_times[it->first].push_back(at);
    };
    graph::NodeId soap_captured = graph::kInvalidNode;
    campaign.for_each_event([&](const CampaignEvent& e) {
      switch (e.kind) {
        case TraceEventKind::Peering:
        case TraceEventKind::HealPeering:
          note(e.a, e.at);
          note(e.b, e.at);
          break;
        case TraceEventKind::SoapCapture:
          soap_captured = static_cast<graph::NodeId>(e.a);
          break;
        case TraceEventKind::SoapRound:
          if (soap_captured != graph::kInvalidNode)
            note(soap_captured, e.at);
          break;
        case TraceEventKind::Join:
        case TraceEventKind::Leave:
        case TraceEventKind::Takedown:
        case TraceEventKind::WaveStart:
        case TraceEventKind::AdaptiveRefresh:
          break;
      }
    });

    // Stage 2 — one bot at a time: synthesize, feed, release. This is
    // the O(window) loop; the per-bot scratch never outlives the bot.
    TrafficTrace bot_scratch;
    for (const scenario::BotLifetime& life : lifetimes) {
      const HostId host = bot_host.at(life.node);
      const auto [birth, death] = bot_window.at(life.node);
      const std::array<HostId, 3> guards = pick_guards(relays, rng);
      bot_scratch.flows.clear();
      bot_scratch.dns.clear();
      emit_browsing(bot_scratch, host, birth, death, rng);
      emit_tor_client(bot_scratch, host, guards, birth, death,
                      config.onion_mean_gap, rng);
      const auto times = cell_times.find(life.node);
      if (times != cell_times.end()) {
        for (const SimTime at : times->second)
          bot_scratch.flows.push_back(tor_cell_flow(
              host, guards[rng.uniform(guards.size())], at, rng));
        cell_times.erase(times);
      }
      for (const FlowRecord& f : bot_scratch.flows) sink.on_flow(f);
      out.flows += bot_scratch.flows.size();
      sink.on_host_done(host);
    }
  }

  out.truth = replay_ground_truth(pops);
  out.known_tor_relays = scratch.known_tor_relays;
  for (const GroundTruth::Population& pop : out.truth.populations) {
    const bool is_benign =
        pop.name == "benign_web" || pop.name == "benign_tor";
    auto& dst = is_benign ? out.monitored : out.infected;
    dst.insert(dst.end(), pop.hosts.begin(), pop.hosts.end());
  }
  std::sort(out.infected.begin(), out.infected.end());
  out.monitored.insert(out.monitored.end(), out.infected.begin(),
                       out.infected.end());
  std::sort(out.monitored.begin(), out.monitored.end());
  return out;
}

void feed_trace(const TrafficTrace& trace, FlowSink& sink) {
  sink.on_relays(trace.known_tor_relays);
  std::uint64_t flows = 0;
  feed_grouped(trace, sink, flows);
}

FlowScorer::FlowScorer(FlowScorerConfig config)
    : config_(std::move(config)),
      beacon_sets_(config_.beacon_thresholds.size()),
      tor_sets_(config_.tor_min_flows.size()) {}

void FlowScorer::on_relays(const std::vector<HostId>& relays) {
  relays_ = std::set<HostId>(relays.begin(), relays.end());
}

void FlowScorer::on_flow(const FlowRecord& f) {
  ONION_EXPECTS(!finished_);
  Series& s = channels_[{f.src, f.dst}];
  s.sizes.push_back(static_cast<double>(f.bytes));
  s.times.push_back(static_cast<double>(f.at));
  ++flows_;
}

void FlowScorer::on_host_done(HostId host) { finalize_host(host); }

void FlowScorer::finalize_host(HostId host) {
  std::size_t tor_flows = 0;
  auto it = channels_.lower_bound({host, 0});
  while (it != channels_.end() && it->first.first == host) {
    Series& s = it->second;
    const std::size_t count = s.sizes.size();
    // Same arithmetic as channel_features: sizes CV as emitted, gaps CV
    // over the sorted timestamps — bitwise-equal to the batch detector.
    const double size_cv = coefficient_of_variation(s.sizes);
    std::sort(s.times.begin(), s.times.end());
    std::vector<double> gaps;
    gaps.reserve(count > 0 ? count - 1 : 0);
    for (std::size_t i = 1; i < s.times.size(); ++i)
      gaps.push_back(s.times[i] - s.times[i - 1]);
    const double gap_cv = coefficient_of_variation(gaps);
    for (std::size_t k = 0; k < config_.beacon_thresholds.size(); ++k) {
      const FlowDetectorConfig& c = config_.beacon_thresholds[k];
      if (count >= c.min_flows && size_cv < c.size_cv_threshold &&
          gap_cv < c.gap_cv_threshold)
        beacon_sets_[k].insert(host);
    }
    if (relays_.count(it->first.second) > 0) tor_flows += count;
    it = channels_.erase(it);
  }
  for (std::size_t k = 0; k < config_.tor_min_flows.size(); ++k)
    if (tor_flows >= config_.tor_min_flows[k] && tor_flows > 0)
      tor_sets_[k].insert(host);
}

void FlowScorer::finish() {
  ONION_EXPECTS(!finished_);
  while (!channels_.empty())
    finalize_host(channels_.begin()->first.first);
  beacon_flagged_.reserve(beacon_sets_.size());
  for (const std::set<HostId>& s : beacon_sets_)
    beacon_flagged_.emplace_back(s.begin(), s.end());
  tor_flagged_.reserve(tor_sets_.size());
  for (const std::set<HostId>& s : tor_sets_)
    tor_flagged_.emplace_back(s.begin(), s.end());
  finished_ = true;
}

const std::vector<std::vector<HostId>>& FlowScorer::beacon_flagged() const {
  ONION_EXPECTS(finished_);
  return beacon_flagged_;
}

const std::vector<std::vector<HostId>>& FlowScorer::tor_flagged() const {
  ONION_EXPECTS(finished_);
  return tor_flagged_;
}

Bytes serialize(const ReplayGridPoint& p) {
  Bytes out;
  out.reserve(8 * 10 + p.detector.size() + p.params.size());
  put_u64(out, p.campaign);
  put_u64(out, p.replay_seed);
  put_string(out, p.detector);
  put_string(out, p.params);
  put_u64(out, p.flows);
  put_u64(out, p.flagged);
  put_u64(out, p.true_positives);
  put_u64(out, p.false_positives);
  put_f64(out, p.tpr);
  put_f64(out, p.fpr);
  put_u64(out, p.families.size());
  for (const RocFamilyCount& f : p.families) {
    put_string(out, f.family);
    put_u64(out, f.flagged);
    put_u64(out, f.population);
  }
  return out;
}

void ReplayGridReport::write_csv(std::FILE* out) const {
  std::fprintf(out,
               "campaign,replay_seed,detector,params,flows,flagged,"
               "true_positives,false_positives,tpr,fpr,families\n");
  for (const ReplayGridPoint& p : points) {
    std::fprintf(out, "%zu,%llu,%s,\"%s\",%llu,%zu,%zu,%zu,%.6f,%.6f,\"",
                 p.campaign, static_cast<unsigned long long>(p.replay_seed),
                 p.detector.c_str(), p.params.c_str(),
                 static_cast<unsigned long long>(p.flows), p.flagged,
                 p.true_positives, p.false_positives, p.tpr, p.fpr);
    for (std::size_t i = 0; i < p.families.size(); ++i)
      std::fprintf(out, "%s%s=%zu/%zu", i == 0 ? "" : ";",
                   p.families[i].family.c_str(), p.families[i].flagged,
                   p.families[i].population);
    std::fprintf(out, "\"\n");
  }
}

std::string combine_replay_points(
    const std::vector<ReplayGridPoint>& points) {
  crypto::Sha256 hasher;
  for (const ReplayGridPoint& p : points) hasher.update(serialize(p));
  const crypto::Sha256Digest digest = hasher.finalize();
  return to_hex(BytesView(digest.data(), digest.size()));
}

ReplayGrid::ReplayGrid(ReplayGridConfig config)
    : config_(std::move(config)) {}

std::size_t ReplayGrid::points_per_cell() const {
  return config_.flow_size_cv.size() * config_.flow_gap_cv.size() +
         config_.tor_min_flows.size();
}

ReplayGridCell ReplayGrid::run_cell(const TraceSource& campaign,
                                    std::uint64_t cell_index) const {
  const std::size_t seeds = config_.replay_seeds.size();
  ReplayGridCell cell;
  cell.cell_index = cell_index;
  cell.campaign = cell_index / seeds;
  cell.replay_seed = config_.replay_seeds[cell_index % seeds];
  const auto start = std::chrono::steady_clock::now();

  FlowScorerConfig scorer_config;
  for (const double size_cv : config_.flow_size_cv)
    for (const double gap_cv : config_.flow_gap_cv) {
      FlowDetectorConfig c;
      c.min_flows = config_.flow_min_flows;
      c.size_cv_threshold = size_cv;
      c.gap_cv_threshold = gap_cv;
      scorer_config.beacon_thresholds.push_back(c);
    }
  scorer_config.tor_min_flows = config_.tor_min_flows;

  ReplayConfig replay = config_.replay;
  replay.seed = cell.replay_seed;
  FlowScorer scorer(scorer_config);
  const StreamPopulations pops =
      replay_trace_streaming(campaign, replay, scorer);
  scorer.finish();

  const std::set<HostId> infected(pops.infected.begin(),
                                  pops.infected.end());
  const std::set<HostId> monitored(pops.monitored.begin(),
                                   pops.monitored.end());
  const std::size_t benign = pops.monitored.size() - pops.infected.size();
  const auto score = [&](std::string detector, std::string params,
                         const std::vector<HostId>& flagged) {
    ReplayGridPoint p;
    p.campaign = static_cast<std::size_t>(cell.campaign);
    p.replay_seed = cell.replay_seed;
    p.detector = std::move(detector);
    p.params = std::move(params);
    p.flows = pops.flows;
    p.flagged = flagged.size();
    for (const HostId h : flagged) {
      if (infected.count(h) > 0)
        ++p.true_positives;
      else if (monitored.count(h) > 0)
        ++p.false_positives;
    }
    p.tpr = infected.empty()
                ? 0.0
                : static_cast<double>(p.true_positives) /
                      static_cast<double>(infected.size());
    p.fpr = benign == 0 ? 0.0
                        : static_cast<double>(p.false_positives) /
                              static_cast<double>(benign);
    p.families.reserve(pops.truth.populations.size());
    for (const GroundTruth::Population& pop : pops.truth.populations) {
      RocFamilyCount f;
      f.family = pop.name;
      f.population = pop.hosts.size();
      // Both sides ascending: membership via binary search.
      for (const HostId h : pop.hosts)
        if (std::binary_search(flagged.begin(), flagged.end(), h))
          ++f.flagged;
      p.families.push_back(std::move(f));
    }
    return p;
  };

  cell.points.reserve(points_per_cell());
  for (std::size_t k = 0; k < scorer_config.beacon_thresholds.size(); ++k) {
    const FlowDetectorConfig& c = scorer_config.beacon_thresholds[k];
    cell.points.push_back(score("flow-beacon",
                                "size_cv=" + fmt(c.size_cv_threshold) +
                                    ",gap_cv=" + fmt(c.gap_cv_threshold),
                                scorer.beacon_flagged()[k]));
  }
  for (std::size_t k = 0; k < scorer_config.tor_min_flows.size(); ++k)
    cell.points.push_back(score(
        "tor-flagger",
        "min_flows=" + std::to_string(scorer_config.tor_min_flows[k]),
        scorer.tor_flagged()[k]));
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return cell;
}

ReplayGridReport ReplayGrid::run(
    const std::vector<const TraceSource*>& campaigns) const {
  ReplayGridReport report;
  const std::size_t ppc = points_per_cell();
  const std::size_t cells = cell_count(campaigns.size());
  report.points.resize(cells * ppc);
  const auto start = std::chrono::steady_clock::now();

  report.threads_used = parallel_for_index(
      cells, config_.threads, [&](std::size_t cell) {
        // Points land at the cell's grid slice, so the sharding cannot
        // leak into the report — and the process transport reruns the
        // identical run_cell, so both paths agree by construction.
        ReplayGridCell result = run_cell(
            *campaigns[cell / config_.replay_seeds.size()], cell);
        for (std::size_t k = 0; k < ppc; ++k)
          report.points[cell * ppc + k] = std::move(result.points[k]);
      });

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.fingerprint = combine_replay_points(report.points);
  return report;
}

ReplayGridReport ReplayGrid::run(const TraceSource& campaign) const {
  return run(std::vector<const TraceSource*>{&campaign});
}

}  // namespace onion::detection
