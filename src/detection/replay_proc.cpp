#include "detection/replay_proc.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "common/check.hpp"
#include "common/fileio.hpp"
#include "scenario/wire.hpp"

namespace onion::detection {

namespace fs = std::filesystem;

std::string replay_cell_frame_filename(std::uint64_t cell_index) {
  char name[48];
  std::snprintf(name, sizeof name, "replay_cell_%06llu.frame",
                static_cast<unsigned long long>(cell_index));
  return name;
}

ReplayGridJob::ReplayGridJob(
    const ReplayGrid& grid,
    std::vector<const scenario::TraceSource*> campaigns)
    : grid_(grid),
      campaigns_(std::move(campaigns)),
      campaign_count_(campaigns_.size()) {
  for (const scenario::TraceSource* campaign : campaigns_)
    ONION_EXPECTS(campaign != nullptr);
  cells_.resize(grid_.cell_count(campaign_count_));
  present_.resize(cells_.size(), false);
}

ReplayGridJob::ReplayGridJob(const ReplayGrid& grid,
                             std::size_t campaign_count)
    : grid_(grid), campaign_count_(campaign_count) {
  cells_.resize(grid_.cell_count(campaign_count_));
  present_.resize(cells_.size(), false);
}

std::size_t ReplayGridJob::size() const { return cells_.size(); }

std::string ReplayGridJob::frame_filename(std::uint64_t cell_index) const {
  return replay_cell_frame_filename(cell_index);
}

std::string ReplayGridJob::cell_label(std::uint64_t cell_index) const {
  const std::size_t seeds = grid_.config().replay_seeds.size();
  return "campaign=" + std::to_string(cell_index / seeds) +
         ",replay_seed=" +
         std::to_string(grid_.config().replay_seeds[cell_index % seeds]);
}

std::uint64_t ReplayGridJob::cell_seed(std::uint64_t cell_index) const {
  const std::size_t seeds = grid_.config().replay_seeds.size();
  return grid_.config().replay_seeds[cell_index % seeds];
}

Bytes ReplayGridJob::run_cell(std::uint64_t cell_index) const {
  // A merge-only job holds no trace sources; executing through it is a
  // caller bug, not a recoverable condition.
  ONION_EXPECTS_MSG(!campaigns_.empty(),
                    "merge-only ReplayGridJob asked to run cell "
                        << cell_index);
  const std::size_t seeds = grid_.config().replay_seeds.size();
  const ReplayGridCell cell =
      grid_.run_cell(*campaigns_[cell_index / seeds], cell_index);
  return scenario::wire::encode_replay_cell(cell);
}

bool ReplayGridJob::accept_frame(std::uint64_t cell_index, BytesView framed,
                                 std::string& error) {
  ReplayGridCell loaded = scenario::wire::decode_replay_cell(framed);
  const std::size_t seeds = grid_.config().replay_seeds.size();
  const std::uint64_t campaign = cell_index / seeds;
  const std::uint64_t replay_seed =
      grid_.config().replay_seeds[cell_index % seeds];
  if (loaded.cell_index != cell_index || loaded.campaign != campaign ||
      loaded.replay_seed != replay_seed ||
      loaded.points.size() != grid_.points_per_cell()) {
    error = "frame identity mismatch: holds (cell " +
            std::to_string(loaded.cell_index) + ", campaign " +
            std::to_string(loaded.campaign) + ", replay_seed " +
            std::to_string(loaded.replay_seed) + ", " +
            std::to_string(loaded.points.size()) + " points), expected (cell " +
            std::to_string(cell_index) + ", campaign " +
            std::to_string(campaign) + ", replay_seed " +
            std::to_string(replay_seed) + ", " +
            std::to_string(grid_.points_per_cell()) + " points)";
    return false;
  }
  cells_[cell_index] = std::move(loaded);
  present_[cell_index] = true;
  return true;
}

ReplayGridReport ReplayGridJob::take_report() {
  ReplayGridReport report;
  report.points.reserve(cells_.size() * grid_.points_per_cell());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!present_[i]) continue;
    for (ReplayGridPoint& p : cells_[i].points)
      report.points.push_back(std::move(p));
  }
  report.fingerprint = combine_replay_points(report.points);
  return report;
}

void run_replay_worker_cells(
    const ReplayGrid& grid,
    std::vector<const scenario::TraceSource*> campaigns,
    const std::vector<scenario::CellAssignment>& assignments,
    const std::string& results_dir, const scenario::FaultPlan& faults) {
  ReplayGridJob job(grid, std::move(campaigns));
  run_job_worker_cells(job, assignments, results_dir, faults);
}

ReplayGridReport merge_replay_frames(const ReplayGrid& grid,
                                     std::size_t campaign_count,
                                     const std::string& results_dir) {
  const auto start = std::chrono::steady_clock::now();
  ReplayGridJob job(grid, campaign_count);
  std::vector<scenario::FailedCell> failed;
  for (std::size_t i = 0; i < job.size(); ++i) {
    const std::string path = results_dir + "/" + job.frame_filename(i);
    std::string error;
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      error = "no result frame";
    } else {
      try {
        if (job.accept_frame(i, read_file_bytes(path), error)) continue;
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    failed.push_back({i, job.cell_label(i), job.cell_seed(i),
                      /*attempts=*/0, error});
  }
  ReplayGridReport report = job.take_report();
  report.failed_cells = std::move(failed);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

ReplayGridCoordinator::ReplayGridCoordinator(
    const ReplayGrid& grid,
    std::vector<const scenario::TraceSource*> campaigns,
    scenario::GridCoordinatorConfig config)
    : grid_(grid), campaigns_(std::move(campaigns)), config_(std::move(config)) {
  scenario::validate_coordinator_config(config_);
}

ReplayGridReport ReplayGridCoordinator::run() {
  ReplayGridJob job(grid_, campaigns_);
  scenario::ProcessCellCoordinator coordinator(job, config_);
  scenario::ProcessOutcome outcome = coordinator.run();

  ReplayGridReport report = job.take_report();
  report.failed_cells = std::move(outcome.failed_cells);
  report.threads_used = outcome.workers;
  report.retries = outcome.retries;
  report.resumed_cells = outcome.resumed_cells;
  report.wall_seconds = outcome.wall_seconds;
  return report;
}

}  // namespace onion::detection
