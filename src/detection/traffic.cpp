#include "detection/traffic.hpp"

#include <array>

#include "common/check.hpp"

namespace onion::detection {

namespace {

/// A few plausibly popular sites for benign DNS noise.
constexpr std::array<const char*, 8> kPopularSites = {
    "search.example",  "video.example",  "social.example", "news.example",
    "mail.example",    "shop.example",   "wiki.example",   "cdn.example",
};

/// Benign-looking pseudo-word for synthetic domains (low entropy,
/// pronounceable-ish — what DGA classifiers contrast against).
std::string benign_name(Rng& rng) {
  static constexpr const char* kVowels = "aeiou";
  static constexpr const char* kConsonants = "bcdfghklmnprstvw";
  std::string out;
  const std::size_t syllables = 2 + rng.uniform(2);
  for (std::size_t s = 0; s < syllables; ++s) {
    out.push_back(kConsonants[rng.uniform(16)]);
    out.push_back(kVowels[rng.uniform(5)]);
  }
  out += ".example";
  return out;
}

/// High-entropy generated label, the classic DGA shape (Conficker-like).
std::string dga_name(Rng& rng) {
  std::string out;
  const std::size_t len = 12 + rng.uniform(8);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<char>('a' + rng.uniform(26)));
  out += ".example";
  return out;
}

/// Hosts `count` fresh IDs starting at `next`, appending them to `trace`.
std::vector<HostId> allocate_hosts(TrafficTrace& trace, HostId& next,
                                   std::size_t count) {
  std::vector<HostId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(next);
    trace.hosts.push_back(next);
    ++next;
  }
  return out;
}

/// Emits web-browsing telemetry for one benign host.
void emit_browsing(TrafficTrace& trace, HostId host, SimDuration window,
                   Rng& rng) {
  SimTime t = rng.uniform(5 * kMinute);
  while (t < window) {
    DnsRecord dns;
    dns.client = host;
    dns.qname = rng.uniform(3) == 0 ? benign_name(rng)
                                    : kPopularSites[rng.uniform(8)];
    dns.nxdomain = rng.uniform(50) == 0;  // the odd typo
    dns.ttl = 300 + static_cast<std::uint32_t>(rng.uniform(3300));
    dns.resolved =
        dns.nxdomain ? 0 : 0x0a000000u + static_cast<std::uint32_t>(
                                             rng.uniform(1 << 16));
    dns.at = t;
    trace.dns.push_back(dns);

    if (!dns.nxdomain) {
      FlowRecord flow;
      flow.src = host;
      flow.dst = dns.resolved;
      flow.dst_port = rng.uniform(4) == 0 ? 80 : 443;
      flow.bytes = 2'000 + rng.uniform(400'000);
      flow.encrypted = flow.dst_port == 443;
      flow.at = t + kSecond;
      trace.flows.push_back(flow);
    }
    // Think time between page visits: human-irregular.
    t += 30 * kSecond + rng.uniform(20 * kMinute);
  }
}

/// Emits Tor-client telemetry: encrypted, cell-quantized flows to a few
/// guard relays, no meaningful DNS (Tor resolves remotely).
void emit_tor_client(TrafficTrace& trace, HostId host,
                     const std::vector<HostId>& relays, SimDuration window,
                     SimDuration mean_gap, Rng& rng) {
  ONION_EXPECTS(!relays.empty());
  // Each client sticks to a small guard set, like real Tor.
  std::array<HostId, 3> guards = {
      relays[rng.uniform(relays.size())],
      relays[rng.uniform(relays.size())],
      relays[rng.uniform(relays.size())],
  };
  SimTime t = rng.uniform(mean_gap);
  while (t < window) {
    FlowRecord flow;
    flow.src = host;
    flow.dst = guards[rng.uniform(guards.size())];
    flow.dst_port = 9001;
    // Tor moves fixed 512-byte cells; flow sizes are cell multiples.
    flow.bytes = 512 * (1 + rng.uniform(512));
    flow.encrypted = true;
    flow.at = t;
    trace.flows.push_back(flow);
    t += mean_gap / 2 + rng.uniform(mean_gap);
  }
}

/// Registers `count` public relay IDs in the trace.
std::vector<HostId> register_relays(TrafficTrace& trace, HostId& next,
                                    std::size_t count) {
  std::vector<HostId> relays;
  relays.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    relays.push_back(next);
    trace.known_tor_relays.push_back(next);
    ++next;
  }
  return relays;
}

/// Shared benign mix: browsing hosts plus legitimate Tor users.
void emit_benign(TrafficTrace& trace, const TrafficConfig& config,
                 HostId& next, Rng& rng) {
  const auto web = allocate_hosts(trace, next, config.benign_web);
  for (const HostId h : web) emit_browsing(trace, h, config.window, rng);

  if (config.benign_tor > 0) {
    const auto relays = register_relays(trace, next, config.tor_relays);
    const auto tor_users = allocate_hosts(trace, next, config.benign_tor);
    for (const HostId h : tor_users) {
      emit_browsing(trace, h, config.window, rng);  // Tor users also browse
      emit_tor_client(trace, h, relays, config.window, 10 * kMinute, rng);
    }
  }
}

}  // namespace

TrafficTrace benign_background(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);
  return trace;
}

TrafficTrace centralized_http_traffic(const TrafficConfig& config,
                                      Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);

  const std::uint32_t cnc_ip = 0xc0a80001;
  const auto bots = allocate_hosts(trace, next, config.bots);
  trace.infected = bots;
  for (const HostId bot : bots) {
    emit_browsing(trace, bot, config.window, rng);  // the user still browses
    SimTime t = rng.uniform(5 * kMinute);
    while (t < config.window) {
      DnsRecord dns;
      dns.client = bot;
      dns.qname = "update-service.example";  // the one hardcoded domain
      dns.ttl = 3600;
      dns.resolved = cnc_ip;
      dns.at = t;
      trace.dns.push_back(dns);

      FlowRecord poll;
      poll.src = bot;
      poll.dst = cnc_ip;
      poll.dst_port = 80;
      poll.bytes = 600 + rng.uniform(64);  // tiny beacon, near-constant
      poll.encrypted = false;
      poll.at = t + kSecond;
      trace.flows.push_back(poll);
      t += 5 * kMinute + rng.uniform(30 * kSecond);  // timer-regular
    }
  }
  return trace;
}

TrafficTrace dga_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);

  const auto bots = allocate_hosts(trace, next, config.bots);
  trace.infected = bots;
  for (const HostId bot : bots) {
    emit_browsing(trace, bot, config.window, rng);
    // Every rendezvous period the bot walks the generated list until one
    // name resolves; law enforcement never registered the first N-1.
    for (SimTime period = 0; period < config.window; period += 6 * kHour) {
      const std::size_t attempts = 40 + rng.uniform(40);
      SimTime t = period + rng.uniform(10 * kMinute);
      for (std::size_t i = 0; i + 1 < attempts; ++i) {
        DnsRecord miss;
        miss.client = bot;
        miss.qname = dga_name(rng);
        miss.nxdomain = true;
        miss.ttl = 0;
        miss.at = t;
        trace.dns.push_back(miss);
        t += kSecond + rng.uniform(2 * kSecond);
      }
      DnsRecord hit;
      hit.client = bot;
      hit.qname = dga_name(rng);  // today's registered name
      hit.ttl = 600;
      hit.resolved = 0xc0a80002;
      hit.at = t;
      trace.dns.push_back(hit);

      FlowRecord flow;
      flow.src = bot;
      flow.dst = hit.resolved;
      flow.dst_port = 80;
      flow.bytes = 900 + rng.uniform(128);
      flow.encrypted = false;
      flow.at = t + kSecond;
      trace.flows.push_back(flow);
    }
  }
  return trace;
}

TrafficTrace fastflux_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);

  const auto bots = allocate_hosts(trace, next, config.bots);
  trace.infected = bots;
  // The flux pool: hundreds of compromised front IPs, rotated per query.
  const std::size_t pool = 400;
  for (const HostId bot : bots) {
    emit_browsing(trace, bot, config.window, rng);
    SimTime t = rng.uniform(5 * kMinute);
    while (t < config.window) {
      DnsRecord dns;
      dns.client = bot;
      dns.qname = "promo-deals.example";  // the fluxed domain
      dns.ttl = 60 + static_cast<std::uint32_t>(rng.uniform(240));
      dns.resolved =
          0xac100000u + static_cast<std::uint32_t>(rng.uniform(pool));
      dns.at = t;
      trace.dns.push_back(dns);

      FlowRecord flow;
      flow.src = bot;
      flow.dst = dns.resolved;
      flow.dst_port = 80;
      flow.bytes = 800 + rng.uniform(256);
      flow.encrypted = false;
      flow.at = t + kSecond;
      trace.flows.push_back(flow);
      t += 10 * kMinute + rng.uniform(2 * kMinute);
    }
  }
  return trace;
}

TrafficTrace p2p_plain_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);

  const auto bots = allocate_hosts(trace, next, config.bots);
  trace.infected = bots;
  for (const HostId bot : bots) emit_browsing(trace, bot, config.window, rng);
  // Gossip mesh: each bot keeps pinging a handful of fixed peers with the
  // family's recognizable message sizes (Storm's OVERNET heritage).
  for (const HostId bot : bots) {
    std::array<HostId, 4> peers{};
    for (auto& p : peers) {
      do {
        p = bots[rng.uniform(bots.size())];
      } while (p == bot && bots.size() > 1);
    }
    SimTime t = rng.uniform(kMinute);
    while (t < config.window) {
      FlowRecord flow;
      flow.src = bot;
      flow.dst = peers[rng.uniform(peers.size())];
      flow.dst_port = 7871;
      flow.bytes = 25 + rng.uniform(4);  // tiny keep-alive datagrams
      flow.encrypted = false;            // XOR "crypto" reads as plaintext
      flow.at = t;
      trace.flows.push_back(flow);
      t += 30 * kSecond + rng.uniform(30 * kSecond);
    }
  }
  return trace;
}

TrafficTrace onionbot_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  // Benign mix first; reuse its relay registry if Tor users exist,
  // otherwise register relays now.
  emit_benign(trace, config, next, rng);
  std::vector<HostId> relays = trace.known_tor_relays;
  if (relays.empty()) relays = register_relays(trace, next, config.tor_relays);

  const auto bots = allocate_hosts(trace, next, config.bots);
  trace.infected = bots;
  for (const HostId bot : bots) {
    emit_browsing(trace, bot, config.window, rng);
    // Heartbeats, NoN shares, relayed broadcasts: all of it is just more
    // cells into the guard — same shape as the benign Tor users above.
    emit_tor_client(trace, bot, relays, config.window, 10 * kMinute, rng);
  }
  return trace;
}

}  // namespace onion::detection
