#include "detection/traffic.hpp"

#include "common/check.hpp"

namespace onion::detection {

namespace {

/// A few plausibly popular sites for benign DNS noise.
constexpr std::array<const char*, 8> kPopularSites = {
    "search.example",  "video.example",  "social.example", "news.example",
    "mail.example",    "shop.example",   "wiki.example",   "cdn.example",
};

/// Benign-looking pseudo-word for synthetic domains (low entropy,
/// pronounceable-ish — what DGA classifiers contrast against).
std::string benign_name(Rng& rng) {
  static constexpr const char* kVowels = "aeiou";
  static constexpr const char* kConsonants = "bcdfghklmnprstvw";
  std::string out;
  const std::size_t syllables = 2 + rng.uniform(2);
  for (std::size_t s = 0; s < syllables; ++s) {
    out.push_back(kConsonants[rng.uniform(16)]);
    out.push_back(kVowels[rng.uniform(5)]);
  }
  out += ".example";
  return out;
}

/// High-entropy generated label, the classic DGA shape (Conficker-like).
std::string dga_name(Rng& rng) {
  std::string out;
  const std::size_t len = 12 + rng.uniform(8);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<char>('a' + rng.uniform(26)));
  out += ".example";
  return out;
}

/// Hosts `count` fresh IDs starting at `next`, appending them to `trace`.
std::vector<HostId> allocate_hosts(TrafficTrace& trace, HostId& next,
                                   std::size_t count) {
  std::vector<HostId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(next);
    trace.hosts.push_back(next);
    ++next;
  }
  return out;
}

/// Marks freshly allocated bots as ground-truth infected.
std::vector<HostId> allocate_bots(TrafficTrace& trace, HostId& next,
                                  std::size_t count) {
  const std::vector<HostId> bots = allocate_hosts(trace, next, count);
  trace.infected.insert(trace.infected.end(), bots.begin(), bots.end());
  return bots;
}

}  // namespace

void emit_browsing(TrafficTrace& trace, HostId host, SimTime start,
                   SimTime stop, Rng& rng) {
  SimTime t = start + rng.uniform(5 * kMinute);
  while (t < stop) {
    DnsRecord dns;
    dns.client = host;
    dns.qname = rng.uniform(3) == 0 ? benign_name(rng)
                                    : kPopularSites[rng.uniform(8)];
    dns.nxdomain = rng.uniform(50) == 0;  // the odd typo
    dns.ttl = 300 + static_cast<std::uint32_t>(rng.uniform(3300));
    dns.resolved =
        dns.nxdomain ? 0 : 0x0a000000u + static_cast<std::uint32_t>(
                                             rng.uniform(1 << 16));
    dns.at = t;
    trace.dns.push_back(dns);

    if (!dns.nxdomain) {
      FlowRecord flow;
      flow.src = host;
      flow.dst = dns.resolved;
      flow.dst_port = rng.uniform(4) == 0 ? 80 : 443;
      flow.bytes = 2'000 + rng.uniform(400'000);
      flow.encrypted = flow.dst_port == 443;
      flow.at = t + kSecond;
      trace.flows.push_back(flow);
    }
    // Think time between page visits: human-irregular.
    t += 30 * kSecond + rng.uniform(20 * kMinute);
  }
}

std::array<HostId, 3> pick_guards(const std::vector<HostId>& relays,
                                  Rng& rng) {
  ONION_EXPECTS(!relays.empty());
  // Each client sticks to a small guard set, like real Tor.
  return {
      relays[rng.uniform(relays.size())],
      relays[rng.uniform(relays.size())],
      relays[rng.uniform(relays.size())],
  };
}

FlowRecord tor_cell_flow(HostId host, HostId guard, SimTime at, Rng& rng) {
  FlowRecord flow;
  flow.src = host;
  flow.dst = guard;
  flow.dst_port = 9001;
  // Tor moves fixed 512-byte cells; flow sizes are cell multiples.
  flow.bytes = 512 * (1 + rng.uniform(512));
  flow.encrypted = true;
  flow.at = at;
  return flow;
}

void emit_tor_client(TrafficTrace& trace, HostId host,
                     const std::array<HostId, 3>& guards, SimTime start,
                     SimTime stop, SimDuration mean_gap, Rng& rng) {
  SimTime t = start + rng.uniform(mean_gap);
  while (t < stop) {
    const HostId guard = guards[rng.uniform(guards.size())];
    trace.flows.push_back(tor_cell_flow(host, guard, t, rng));
    t += mean_gap / 2 + rng.uniform(mean_gap);
  }
}

std::vector<HostId> register_tor_relays(TrafficTrace& trace,
                                        std::size_t count, HostId& next) {
  std::vector<HostId> relays;
  relays.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    relays.push_back(next);
    trace.known_tor_relays.push_back(next);
    ++next;
  }
  return relays;
}

BenignPopulation emit_benign(TrafficTrace& trace,
                             const TrafficConfig& config, HostId& next,
                             Rng& rng) {
  BenignPopulation out;
  out.web_hosts = allocate_hosts(trace, next, config.benign_web);
  for (const HostId h : out.web_hosts)
    emit_browsing(trace, h, 0, config.window, rng);

  if (config.benign_tor > 0) {
    out.relays = register_tor_relays(trace, config.tor_relays, next);
    out.tor_users = allocate_hosts(trace, next, config.benign_tor);
    for (const HostId h : out.tor_users) {
      emit_browsing(trace, h, 0, config.window, rng);  // Tor users browse too
      emit_tor_client(trace, h, pick_guards(out.relays, rng), 0,
                      config.window, config.tor_mean_gap, rng);
    }
  }
  return out;
}

std::vector<HostId> emit_centralized_bots(TrafficTrace& trace,
                                          std::size_t bots,
                                          SimDuration window, HostId& next,
                                          Rng& rng) {
  const std::uint32_t cnc_ip = 0xc0a80001;
  const auto ids = allocate_bots(trace, next, bots);
  for (const HostId bot : ids) {
    emit_browsing(trace, bot, 0, window, rng);  // the user still browses
    SimTime t = rng.uniform(5 * kMinute);
    while (t < window) {
      DnsRecord dns;
      dns.client = bot;
      dns.qname = "update-service.example";  // the one hardcoded domain
      dns.ttl = 3600;
      dns.resolved = cnc_ip;
      dns.at = t;
      trace.dns.push_back(dns);

      FlowRecord poll;
      poll.src = bot;
      poll.dst = cnc_ip;
      poll.dst_port = 80;
      poll.bytes = 600 + rng.uniform(64);  // tiny beacon, near-constant
      poll.encrypted = false;
      poll.at = t + kSecond;
      trace.flows.push_back(poll);
      t += 5 * kMinute + rng.uniform(30 * kSecond);  // timer-regular
    }
  }
  return ids;
}

std::vector<HostId> emit_dga_bots(TrafficTrace& trace, std::size_t bots,
                                  SimDuration window, HostId& next,
                                  Rng& rng) {
  const auto ids = allocate_bots(trace, next, bots);
  for (const HostId bot : ids) {
    emit_browsing(trace, bot, 0, window, rng);
    // Every rendezvous period the bot walks the generated list until one
    // name resolves; law enforcement never registered the first N-1.
    for (SimTime period = 0; period < window; period += 6 * kHour) {
      const std::size_t attempts = 40 + rng.uniform(40);
      SimTime t = period + rng.uniform(10 * kMinute);
      for (std::size_t i = 0; i + 1 < attempts; ++i) {
        DnsRecord miss;
        miss.client = bot;
        miss.qname = dga_name(rng);
        miss.nxdomain = true;
        miss.ttl = 0;
        miss.at = t;
        trace.dns.push_back(miss);
        t += kSecond + rng.uniform(2 * kSecond);
      }
      DnsRecord hit;
      hit.client = bot;
      hit.qname = dga_name(rng);  // today's registered name
      hit.ttl = 600;
      hit.resolved = 0xc0a80002;
      hit.at = t;
      trace.dns.push_back(hit);

      FlowRecord flow;
      flow.src = bot;
      flow.dst = hit.resolved;
      flow.dst_port = 80;
      flow.bytes = 900 + rng.uniform(128);
      flow.encrypted = false;
      flow.at = t + kSecond;
      trace.flows.push_back(flow);
    }
  }
  return ids;
}

std::vector<HostId> emit_fastflux_bots(TrafficTrace& trace,
                                       std::size_t bots,
                                       SimDuration window, HostId& next,
                                       Rng& rng) {
  const auto ids = allocate_bots(trace, next, bots);
  // The flux pool: hundreds of compromised front IPs, rotated per query.
  const std::size_t pool = 400;
  for (const HostId bot : ids) {
    emit_browsing(trace, bot, 0, window, rng);
    SimTime t = rng.uniform(5 * kMinute);
    while (t < window) {
      DnsRecord dns;
      dns.client = bot;
      dns.qname = "promo-deals.example";  // the fluxed domain
      dns.ttl = 60 + static_cast<std::uint32_t>(rng.uniform(240));
      dns.resolved =
          0xac100000u + static_cast<std::uint32_t>(rng.uniform(pool));
      dns.at = t;
      trace.dns.push_back(dns);

      FlowRecord flow;
      flow.src = bot;
      flow.dst = dns.resolved;
      flow.dst_port = 80;
      flow.bytes = 800 + rng.uniform(256);
      flow.encrypted = false;
      flow.at = t + kSecond;
      trace.flows.push_back(flow);
      t += 10 * kMinute + rng.uniform(2 * kMinute);
    }
  }
  return ids;
}

std::vector<HostId> emit_p2p_bots(TrafficTrace& trace, std::size_t bots,
                                  SimDuration window, HostId& next,
                                  Rng& rng) {
  const auto ids = allocate_bots(trace, next, bots);
  for (const HostId bot : ids) emit_browsing(trace, bot, 0, window, rng);
  // Gossip mesh: each bot keeps pinging a handful of fixed peers with the
  // family's recognizable message sizes (Storm's OVERNET heritage).
  for (const HostId bot : ids) {
    std::array<HostId, 4> peers{};
    for (auto& p : peers) {
      do {
        p = ids[rng.uniform(ids.size())];
      } while (p == bot && ids.size() > 1);
    }
    SimTime t = rng.uniform(kMinute);
    while (t < window) {
      FlowRecord flow;
      flow.src = bot;
      flow.dst = peers[rng.uniform(peers.size())];
      flow.dst_port = 7871;
      flow.bytes = 25 + rng.uniform(4);  // tiny keep-alive datagrams
      flow.encrypted = false;            // XOR "crypto" reads as plaintext
      flow.at = t;
      trace.flows.push_back(flow);
      t += 30 * kSecond + rng.uniform(30 * kSecond);
    }
  }
  return ids;
}

TrafficTrace benign_background(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);
  return trace;
}

TrafficTrace centralized_http_traffic(const TrafficConfig& config,
                                      Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);
  emit_centralized_bots(trace, config.bots, config.window, next, rng);
  return trace;
}

TrafficTrace dga_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);
  emit_dga_bots(trace, config.bots, config.window, next, rng);
  return trace;
}

TrafficTrace fastflux_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);
  emit_fastflux_bots(trace, config.bots, config.window, next, rng);
  return trace;
}

TrafficTrace p2p_plain_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  emit_benign(trace, config, next, rng);
  emit_p2p_bots(trace, config.bots, config.window, next, rng);
  return trace;
}

TrafficTrace onionbot_traffic(const TrafficConfig& config, Rng& rng) {
  TrafficTrace trace;
  HostId next = config.first_host;
  // Benign mix first; reuse its relay registry if Tor users exist,
  // otherwise register relays now.
  emit_benign(trace, config, next, rng);
  std::vector<HostId> relays = trace.known_tor_relays;
  if (relays.empty())
    relays = register_tor_relays(trace, config.tor_relays, next);

  const auto bots = allocate_bots(trace, next, config.bots);
  for (const HostId bot : bots) {
    emit_browsing(trace, bot, 0, config.window, rng);
    // Heartbeats, NoN shares, relayed broadcasts: all of it is just more
    // cells into the guard — same shape (and cadence) as the benign Tor
    // users above, or the indistinguishability story falls apart.
    emit_tor_client(trace, bot, pick_guards(relays, rng), 0, config.window,
                    config.tor_mean_gap, rng);
  }
  return trace;
}

}  // namespace onion::detection
