// Network telemetry as an ISP/enterprise defender records it — the raw
// material of every detection system the paper surveys in Section II.
// Detectors in this module consume nothing else: if a signal is not in
// the DNS log or the flow log, no detector can use it. That constraint
// is the point of the module — OnionBot traffic simply leaves the
// incriminating fields empty (no DNS, no plaintext, no bot-to-bot flows
// visible past the first Tor hop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace onion::detection {

/// Identifies a monitored endpoint (a host IP, anonymized).
using HostId = std::uint32_t;

/// One DNS query observed at the resolver.
struct DnsRecord {
  HostId client = 0;
  std::string qname;
  /// NXDOMAIN answers are the DGA tell: most generated names are never
  /// registered.
  bool nxdomain = false;
  /// Answer TTL in seconds (fast-flux uses very small values).
  std::uint32_t ttl = 3600;
  /// Resolved address (0 when nxdomain). Fast-flux cycles many of these
  /// per name.
  std::uint32_t resolved = 0;
  SimTime at = 0;
};

/// One flow record (NetFlow-style 5-tuple digest).
struct FlowRecord {
  HostId src = 0;
  HostId dst = 0;
  std::uint16_t dst_port = 0;
  std::size_t bytes = 0;
  /// Whether payload bytes look high-entropy to a DPI tap. Tor traffic
  /// is always true; legacy families vary.
  bool encrypted = false;
  SimTime at = 0;
};

/// A labelled capture: what the defender's sensors collected over the
/// observation window, plus ground truth for scoring detectors.
struct TrafficTrace {
  std::vector<DnsRecord> dns;
  std::vector<FlowRecord> flows;

  /// Ground truth: which monitored hosts are actually infected.
  std::vector<HostId> infected;
  /// All monitored hosts (infected plus benign).
  std::vector<HostId> hosts;

  /// Destination IDs that are publicly known Tor relays (defenders have
  /// the consensus too; knowing a host *uses* Tor is easy — knowing what
  /// it does through Tor is not).
  std::vector<HostId> known_tor_relays;

  /// Concatenates `other`'s streams onto this trace. Reserves up front
  /// (multi-population composition must not reallocate quadratically)
  /// and deduplicates the ground-truth host lists — `hosts`,
  /// `known_tor_relays`, and `infected` — preserving first-seen order,
  /// so appending overlapping captures cannot double-count a host in
  /// the TPR/FPR denominators.
  void append(const TrafficTrace& other);
};

/// Canonical serialization: fixed field and record order, big-endian
/// words, length-prefixed strings and lists. Equal bytes iff the traces
/// are field-identical — the unit the replay-determinism tests compare.
Bytes serialize(const TrafficTrace& trace);

/// SHA-256 (hex) over the canonical serialization, streamed record by
/// record so fingerprinting a large trace never materializes the bytes.
std::string fingerprint(const TrafficTrace& trace);

/// A detector's verdict over a trace.
struct DetectionResult {
  std::vector<HostId> flagged;

  /// Scores against ground truth.
  double true_positive_rate(const TrafficTrace& trace) const;
  double false_positive_rate(const TrafficTrace& trace) const;
};

}  // namespace onion::detection
