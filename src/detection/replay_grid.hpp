// Replay-level ROC grids over streamed campaign traces: the sweep that
// lets a recorded 500k-node campaign be scored end-to-end without ever
// materializing its event log (scenario/trace_io.hpp streams it) *or*
// its TrafficTrace (the synthesizer here feeds flows host-by-host into
// a streaming scorer and releases each host as soon as it is scored).
//
// Three pieces:
//
//   FlowSink / replay_trace_streaming
//     The O(window) twin of detection::replay_trace: same populations,
//     same emitters, but flows stream into a sink grouped by source
//     host instead of accumulating in a trace. Peak memory is one
//     host's flows plus the population tables — never the capture.
//     NOTE: the streamed capture is its own deterministic artifact, not
//     byte-identical to replay_trace's (the batch path draws event-cell
//     randomness in global event order; the streaming path draws it
//     per-bot). Equal (campaign, config) still reproduce the streamed
//     capture — and every grid fingerprint — exactly.
//
//   FlowScorer
//     A FlowSink evaluating every configured flow-beacon threshold and
//     tor-flagger threshold in one pass. Per-channel features use the
//     exported coefficient_of_variation, so its verdicts are *equal* —
//     not approximately — to detect_beacons / detect_tor_users fed the
//     same flows (tests/replay_grid_test.cpp asserts set equality).
//
//   ReplayGrid
//     Shards campaign × replay-seed cells across common/parallel.hpp
//     (each cell scoring its full detector-threshold axis in one
//     streamed pass) into a fingerprinted ReplayGridReport; points land
//     at their grid index, so thread count never moves the fingerprint.
//     run_cell exposes the unit of work — one ReplayGridCell per
//     (campaign, seed) — so the multi-process transport
//     (detection/replay_proc.hpp over scenario/wire.hpp frames) runs
//     the byte-identical computation out of process.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "detection/flow_detector.hpp"
#include "detection/replay.hpp"
#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

namespace onion::detection {

/// Receives a streamed capture. Flows arrive grouped by source host:
/// all of a host's flows, then on_host_done(host) — after which no more
/// flows for that host may arrive. on_relays announces the public Tor
/// relay registry before any flow.
class FlowSink {
 public:
  virtual ~FlowSink() = default;
  virtual void on_relays(const std::vector<HostId>& relays) = 0;
  virtual void on_flow(const FlowRecord& f) = 0;
  virtual void on_host_done(HostId host) = 0;
};

/// The per-population host tables a streamed replay produces instead of
/// a TrafficTrace: everything the grid needs to score verdicts, nothing
/// proportional to the capture.
struct StreamPopulations {
  /// Named per-family populations, same fixed order as
  /// replay_ground_truth (empty populations omitted).
  GroundTruth truth;
  std::vector<HostId> infected;   // union of every bot family, ascending
  std::vector<HostId> monitored;  // infected + benign, ascending
  std::vector<HostId> known_tor_relays;
  std::uint64_t flows = 0;  // total flows streamed into the sink
};

/// Streams the synthesized defender's capture into `sink` and returns
/// the population tables. Same population layout and host-id assignment
/// as replay_trace (benign, then legacy families, then campaign bots in
/// node-id order), any TraceSource (two forward event passes).
StreamPopulations replay_trace_streaming(
    const scenario::TraceSource& campaign, const ReplayConfig& config,
    FlowSink& sink);

/// Feeds an already-materialized trace into a sink, grouping flows by
/// source host (ascending) — the bridge differential tests use to run
/// the streaming scorer over a batch capture.
void feed_trace(const TrafficTrace& trace, FlowSink& sink);

/// Every threshold the one-pass scorer evaluates.
struct FlowScorerConfig {
  /// Flow-beacon operating points (min_flows/size_cv/gap_cv each).
  std::vector<FlowDetectorConfig> beacon_thresholds;
  /// Tor-flagger min-flow thresholds.
  std::vector<std::size_t> tor_min_flows;
};

/// One-pass streaming scorer: buffers per-channel size/time series only
/// for hosts not yet finalized, and collapses each host to verdicts at
/// its on_host_done. Call finish() after the stream ends (it finalizes
/// any hosts fed without an on_host_done, so raw ungrouped traces work
/// too); flagged sets are valid afterwards, sorted ascending like the
/// batch detectors'.
class FlowScorer final : public FlowSink {
 public:
  explicit FlowScorer(FlowScorerConfig config);

  void on_relays(const std::vector<HostId>& relays) override;
  void on_flow(const FlowRecord& f) override;
  void on_host_done(HostId host) override;
  void finish();

  std::uint64_t flows_scored() const { return flows_; }
  /// Flagged hosts per beacon threshold (index-parallel with the
  /// config's beacon_thresholds), ascending.
  const std::vector<std::vector<HostId>>& beacon_flagged() const;
  /// Flagged hosts per tor min-flows threshold, ascending.
  const std::vector<std::vector<HostId>>& tor_flagged() const;

 private:
  struct Series {
    std::vector<double> sizes;
    std::vector<double> times;
  };
  void finalize_host(HostId host);

  FlowScorerConfig config_;
  std::set<HostId> relays_;
  /// Open (not yet finalized) hosts' channels, keyed (src, dst).
  std::map<std::pair<HostId, HostId>, Series> channels_;
  std::uint64_t flows_ = 0;
  bool finished_ = false;
  std::vector<std::set<HostId>> beacon_sets_;
  std::vector<std::set<HostId>> tor_sets_;
  std::vector<std::vector<HostId>> beacon_flagged_;
  std::vector<std::vector<HostId>> tor_flagged_;
};

/// The replay-level grid: which campaigns' recorded traces to sweep is
/// run()'s argument; this config fixes the replay knobs, the seed axis,
/// and the detector-threshold axes.
struct ReplayGridConfig {
  /// Telemetry-noise realizations per campaign.
  std::vector<std::uint64_t> replay_seeds = {1, 2};
  /// Replay knobs shared by every cell (seed is overridden per cell).
  ReplayConfig replay;

  /// Flow-beacon axes (row-major size_cv × gap_cv, like RocConfig).
  std::vector<double> flow_size_cv = {0.1, 0.25, 0.5, 0.75};
  std::vector<double> flow_gap_cv = {0.2, 0.45, 0.7, 1.0};
  std::size_t flow_min_flows = 12;
  /// Tor-flagger axis.
  std::vector<std::size_t> tor_min_flows = {1, 3, 10, 30};

  /// Worker pool; 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// One scored operating point of one (campaign, seed) cell.
struct ReplayGridPoint {
  std::size_t campaign = 0;  // index into run()'s campaign list
  std::uint64_t replay_seed = 0;
  std::string detector;  // "flow-beacon" | "tor-flagger"
  std::string params;    // canonical "key=value,..." tuple
  std::uint64_t flows = 0;  // flows the cell streamed (deterministic)
  std::size_t flagged = 0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  double tpr = 0.0;
  double fpr = 0.0;
  /// Per-population counts in GroundTruth order — the family resolution
  /// the paper's argument needs (tor-flagger's benign_tor FPR).
  std::vector<RocFamilyCount> families;
};

/// Canonical serialization of one point — the unit the grid fingerprint
/// hashes.
Bytes serialize(const ReplayGridPoint& p);

/// The grid fingerprint over `points` (chained SHA-256, hex, in the
/// given order). Exposed so the process-level merge and its tests can
/// recompute the invariant from any partition of completed cells.
std::string combine_replay_points(const std::vector<ReplayGridPoint>& points);

/// One (campaign, seed) cell's outcome — the unit the multi-process
/// transport ships as a wire frame (scenario/wire.hpp). `points` is the
/// cell's points_per_cell() slice of the grid, in grid order.
/// wall_seconds is informational only (never fingerprinted).
struct ReplayGridCell {
  std::uint64_t cell_index = 0;
  std::uint64_t campaign = 0;  // index into the campaign list
  std::uint64_t replay_seed = 0;
  std::vector<ReplayGridPoint> points;
  double wall_seconds = 0.0;
};

/// The grid's outcome, points in grid order: campaign-major, then seed,
/// then flow-beacon thresholds row-major, then the tor axis. A merged
/// multi-process report degrades gracefully: quarantined cells land in
/// `failed_cells` and contribute no points, and the fingerprint covers
/// exactly the completed cells' points in cell order — so a complete
/// merge reproduces run()'s digest byte-for-byte.
struct ReplayGridReport {
  std::vector<ReplayGridPoint> points;
  /// Chained SHA-256 (hex) over the serialized points; equal campaigns
  /// + equal config reproduce it at any thread count, worker count,
  /// partition shape, or retry history.
  std::string fingerprint;
  /// Cells that never produced a valid frame (process mode only),
  /// cell-index order.
  std::vector<scenario::FailedCell> failed_cells;
  /// Informational only, like wall_seconds: never fingerprinted.
  std::size_t threads_used = 0;
  double wall_seconds = 0.0;
  std::uint64_t retries = 0;        // cell re-executions scheduled
  std::uint64_t resumed_cells = 0;  // valid frames skipped on resume

  /// One CSV row per point (plus a header).
  void write_csv(std::FILE* out) const;
};

class ReplayGrid {
 public:
  explicit ReplayGrid(ReplayGridConfig config = {});

  const ReplayGridConfig& config() const { return config_; }

  /// Points every run produces per (campaign, seed) cell.
  std::size_t points_per_cell() const;
  /// Cells a run over `campaign_count` campaigns sweeps (campaign-major
  /// × replay seed).
  std::size_t cell_count(std::size_t campaign_count) const {
    return campaign_count * config_.replay_seeds.size();
  }

  /// Runs one grid cell: streams `campaign`'s replay (the trace source
  /// matching the cell's campaign index) once through a FlowScorer and
  /// scores every configured threshold. This is the exact computation
  /// run() shards in-process and replay workers run out-of-process, so
  /// the per-cell points — and any fingerprint over them — agree by
  /// construction.
  ReplayGridCell run_cell(const scenario::TraceSource& campaign,
                          std::uint64_t cell_index) const;

  /// Sweeps every campaign × seed cell; each cell streams one replay
  /// through a FlowScorer evaluating the full threshold axes.
  ReplayGridReport run(
      const std::vector<const scenario::TraceSource*>& campaigns) const;
  /// Single-campaign convenience.
  ReplayGridReport run(const scenario::TraceSource& campaign) const;

 private:
  ReplayGridConfig config_;
};

}  // namespace onion::detection
