// Campaign→telemetry replay: turns a recorded scenario campaign
// (scenario/trace.hpp) into the TrafficTrace an on-path defender would
// have captured while that campaign ran — the bridge between the
// churn-plus-attack dynamics the scenario engine produces and the
// detector suite in this module, replacing hand-rolled synthetic bot
// populations with traces whose membership, timing, and activity come
// from an actual simulated overlay.
//
// Each honest campaign bot becomes a monitored host that emits exactly
// what the paper says an OnionBot emits: encrypted, cell-quantized
// flows to public Tor relays, nothing else. Lifetimes bound the
// emission — a bot taken down mid-campaign goes dark at its takedown
// time — and campaign events surface only as *more cells to the guard*:
// bootstrap peering requests and SOAP rounds each add a cell flow, which
// is precisely the paper's point that every observable activity
// collapses into the same shape benign Tor clients produce.
//
// Around the campaign population, the compositor stacks configurable
// benign background (web + legitimate Tor users) and co-resident legacy
// botnet families (centralized/DGA/fast-flux/P2P-plaintext), so one
// replayed trace carries every family's ground truth at once and a
// single detector sweep scores them all.
//
// Everything derives from (campaign trace, config): equal inputs
// reproduce a byte-identical TrafficTrace (tests/replay_test.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "detection/roc.hpp"
#include "detection/telemetry.hpp"
#include "detection/traffic.hpp"
#include "scenario/trace.hpp"

namespace onion::detection {

/// What to synthesize around (and from) the recorded campaign.
struct ReplayConfig {
  /// Telemetry-synthesis seed, independent of the campaign seed: one
  /// recorded campaign replays into many sensor-noise realizations.
  std::uint64_t seed = 1;

  /// Observation window; 0 means the campaign horizon.
  SimDuration window = 0;

  /// Benign background (see TrafficConfig for the semantics).
  std::size_t benign_web = 120;
  std::size_t benign_tor = 20;
  std::size_t tor_relays = 64;
  SimDuration benign_tor_mean_gap = 10 * kMinute;

  /// Co-resident legacy botnet populations (0 = absent). They live in
  /// the same monitored network for the whole window.
  std::size_t centralized_bots = 0;
  std::size_t dga_bots = 0;
  std::size_t fastflux_bots = 0;
  std::size_t p2p_bots = 0;

  /// Cap on how many campaign bots become monitored hosts (in node-id
  /// order, i.e. oldest first); kAllBots maps the whole population, 0
  /// excludes it entirely (legacy-only rows in the evasion matrix).
  static constexpr std::size_t kAllBots =
      std::numeric_limits<std::size_t>::max();
  std::size_t max_onion_bots = kAllBots;

  /// Mean gap between an idle OnionBot's guard contacts (heartbeats,
  /// NoN shares — matches the benign Tor users' cadence by design).
  SimDuration onion_mean_gap = 10 * kMinute;

  /// First host id to allocate (composition offset).
  HostId first_host = 0;
};

/// A replayed capture plus per-population ground truth. `trace.infected`
/// holds the union of every bot family; the per-family lists let the
/// evasion matrix score each family separately on one trace.
struct ReplayResult {
  TrafficTrace trace;
  /// Campaign population in node-id order; bots born at or after the
  /// observation window's end are omitted (never observable, so they
  /// must not enter the ground truth a defender is scored against).
  std::vector<HostId> onion_bots;
  std::vector<HostId> centralized_bots;
  std::vector<HostId> dga_bots;
  std::vector<HostId> fastflux_bots;
  std::vector<HostId> p2p_bots;
  std::vector<HostId> benign_web_hosts;
  std::vector<HostId> benign_tor_users;
};

/// Synthesizes the defender's capture from a recorded campaign. The
/// campaign must have begun (CampaignEngine::run delivers on_begin);
/// a trace with no events is fine — a static overlay replays as pure
/// steady-state heartbeat traffic. Takes any TraceSource — the
/// in-memory CampaignTrace or a streamed trace_io::TraceReader produce
/// byte-identical TrafficTraces for the same recorded campaign (the
/// synthesis consumes the event stream in two forward passes:
/// lifetimes(), then the event-driven cell emission).
ReplayResult replay_trace(const scenario::TraceSource& campaign,
                          const ReplayConfig& config);

/// Back-compat spelling; forwards to the TraceSource overload.
ReplayResult replay_trace(const scenario::CampaignTrace& campaign,
                          const ReplayConfig& config);

/// Fraction of `population` that `result` flagged — per-family TPR (or
/// FPR, for a benign population) over a composed trace. 0 on an empty
/// population.
double flagged_fraction(const DetectionResult& result,
                        const std::vector<HostId>& population);

/// Folds a replay's per-population host lists into the ROC layer's
/// named GroundTruth, so RocSweep::run(trace, truth) resolves every
/// family on one sweep. Population order is fixed (onion, centralized,
/// dga, fastflux, p2p, benign_web, benign_tor — empty ones omitted), so
/// the family-resolved fingerprint is a function of the replay alone.
GroundTruth replay_ground_truth(const ReplayResult& result);

}  // namespace onion::detection
