// Working reproductions of the command-channel "crypto" of the botnet
// families in the paper's Table I, as documented by the reverse-
// engineering literature the paper cites (Rossow et al., "SoK: P2PWNED"):
//
//   Botnet          Crypto        Signing    Replay
//   Miner           none          none       yes
//   Storm           XOR           none       yes
//   ZeroAccess v1   RC4           RSA 512    yes
//   Zeus            chained XOR   RSA 2048   yes
//
// Each family gets a functioning bot model that accepts command wires
// the way the original did — crucially, none of them tracks nonces, so
// all are replayable, and the unsigned ones are hijackable outright. The
// Table I bench demonstrates every cell of the table in running code and
// contrasts it with the OnionBot command channel.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/simrsa.hpp"

namespace onion::baselines {

/// The Table I botnet families.
enum class LegacyFamily : std::uint8_t {
  Miner = 0,
  Storm = 1,
  ZeroAccessV1 = 2,
  Zeus = 3,
};

/// Static properties — the literal content of Table I.
struct LegacyProfile {
  const char* name;
  const char* crypto;
  const char* signing;
  bool replayable;
  /// Nominal RSA bits (0 = unsigned).
  int signing_bits;
};

/// Profile for a family (matches Table I row for row).
const LegacyProfile& profile(LegacyFamily family);

/// All four families, Table I order.
std::vector<LegacyFamily> all_legacy_families();

/// A captured command wire: what a defender sniffing the C&C channel
/// records and can replay.
struct LegacyWire {
  Bytes bytes;
};

/// The controller side: builds command wires for its bots.
class LegacyController {
 public:
  LegacyController(LegacyFamily family, Rng& rng);

  /// Encrypts (and signs, where the family does) a command string.
  LegacyWire make_command(const std::string& command) const;

  /// The verification key bots of signing families carry.
  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

  /// The symmetric key byte (XOR / chained-XOR families) or RC4 key.
  std::uint8_t symmetric_key() const { return sym_key_; }
  const Bytes& rc4_key() const { return rc4_key_; }

  LegacyFamily family() const { return family_; }

 private:
  LegacyFamily family_;
  crypto::RsaKeyPair key_;
  std::uint8_t sym_key_ = 0;
  Bytes rc4_key_;
};

/// The bot side: accepts or rejects command wires exactly as the family's
/// real bots did (decrypt, magic check, signature check — no replay
/// protection anywhere, faithfully).
class LegacyBot {
 public:
  explicit LegacyBot(const LegacyController& controller);

  /// Processes a wire; returns the decoded command if accepted.
  std::optional<std::string> accept(const LegacyWire& wire);

  /// Commands executed so far (replays included — that is the point).
  std::size_t executed_count() const { return executed_; }

 private:
  const LegacyController& controller_;
  std::size_t executed_ = 0;
};

/// True iff a defender (who captured wires but has no keys) can forge a
/// *new* command the family's bots accept: the unsigned families.
bool hijackable(LegacyFamily family);

/// Demonstrates the hijack: forges a command wire for an unsigned family
/// using only knowledge extractable from a captured bot binary (the
/// symmetric key — hardcoded in the real samples).
LegacyWire forge_command(const LegacyController& controller,
                         const std::string& command);

}  // namespace onion::baselines
