// Centralized C&C baseline (paper Section II): bots contact a fixed
// server over plain channels. Two structural weaknesses OnionBots remove,
// both demonstrated by tests/benches against this model:
//
//   1. Single point of failure: seize the C&C address and the whole
//      botnet goes silent.
//   2. Observability: every flow exposes (source, destination, size,
//      direction) to any on-path defender — the raw material of the
//      NetFlow/DNS detection literature the paper surveys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace onion::baselines {

/// One observable flow record, as an ISP-level defender would log it.
struct FlowRecord {
  std::uint32_t src = 0;   // bot identifier (its IP, in the real world)
  std::uint32_t dst = 0;   // C&C identifier
  std::size_t bytes = 0;
  bool to_cnc = true;
};

/// Minimal centralized botnet model.
class CentralizedBotnet {
 public:
  explicit CentralizedBotnet(std::size_t num_bots)
      : num_bots_(num_bots) {}

  std::size_t num_bots() const { return num_bots_; }
  bool cnc_seized() const { return seized_; }

  /// The defender takes over / blocks the C&C address.
  void seize_cnc() { seized_ = true; }

  /// Botmaster pushes a command; returns how many bots received it
  /// (zero after seizure — the single point of failure).
  std::size_t broadcast(const std::string& command);

  /// Every message so far, as the defender's flow log. Each record maps a
  /// bot to the C&C — the botnet enumerates *itself* to any observer.
  const std::vector<FlowRecord>& flow_log() const { return flows_; }

  /// How many distinct bots an on-path observer has identified.
  std::size_t bots_exposed() const;

 private:
  std::size_t num_bots_;
  bool seized_ = false;
  std::vector<FlowRecord> flows_;
};

}  // namespace onion::baselines
