#include "baselines/legacy.hpp"

#include "common/check.hpp"
#include "crypto/legacy_ciphers.hpp"
#include "crypto/rc4.hpp"

namespace onion::baselines {

namespace {
// Command wires start with a magic tag so bots can tell a good decrypt.
constexpr std::string_view kMagic = "CMD:";

Bytes tagged(const std::string& command) {
  Bytes out = to_bytes(kMagic);
  append(out, to_bytes(command));
  return out;
}

std::optional<std::string> untag(BytesView plain) {
  if (plain.size() < kMagic.size()) return std::nullopt;
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (plain[i] != static_cast<std::uint8_t>(kMagic[i]))
      return std::nullopt;
  return std::string(plain.begin() + kMagic.size(), plain.end());
}

const LegacyProfile kProfiles[] = {
    {"Miner", "none", "none", true, 0},
    {"Storm", "XOR", "none", true, 0},
    {"ZeroAccess v1", "RC4", "RSA 512", true, 512},
    {"Zeus", "chained XOR", "RSA 2048", true, 2048},
};
}  // namespace

const LegacyProfile& profile(LegacyFamily family) {
  return kProfiles[static_cast<std::size_t>(family)];
}

std::vector<LegacyFamily> all_legacy_families() {
  return {LegacyFamily::Miner, LegacyFamily::Storm,
          LegacyFamily::ZeroAccessV1, LegacyFamily::Zeus};
}

LegacyController::LegacyController(LegacyFamily family, Rng& rng)
    : family_(family) {
  const LegacyProfile& prof = profile(family);
  if (prof.signing_bits > 0)
    key_ = crypto::rsa_generate(rng, prof.signing_bits);
  sym_key_ = static_cast<std::uint8_t>(rng.uniform_in(1, 255));
  rc4_key_.resize(16);
  for (auto& b : rc4_key_) b = static_cast<std::uint8_t>(rng.next_u64());
}

LegacyWire LegacyController::make_command(const std::string& command) const {
  const Bytes plain = tagged(command);
  LegacyWire wire;
  switch (family_) {
    case LegacyFamily::Miner:
      wire.bytes = plain;
      break;
    case LegacyFamily::Storm:
      wire.bytes = crypto::xor_cipher(plain, sym_key_);
      break;
    case LegacyFamily::ZeroAccessV1: {
      // [signature(8)] [RC4(plain)]
      const crypto::RsaSignature sig = crypto::rsa_sign(key_, plain);
      wire.bytes = be64(sig);
      crypto::Rc4 cipher(rc4_key_);
      append(wire.bytes, cipher.process(plain));
      break;
    }
    case LegacyFamily::Zeus: {
      const crypto::RsaSignature sig = crypto::rsa_sign(key_, plain);
      wire.bytes = be64(sig);
      append(wire.bytes, crypto::chained_xor_encrypt(plain, sym_key_));
      break;
    }
  }
  return wire;
}

LegacyBot::LegacyBot(const LegacyController& controller)
    : controller_(controller) {}

std::optional<std::string> LegacyBot::accept(const LegacyWire& wire) {
  const LegacyFamily family = controller_.family();
  Bytes plain;
  std::optional<crypto::RsaSignature> sig;
  switch (family) {
    case LegacyFamily::Miner:
      plain = wire.bytes;
      break;
    case LegacyFamily::Storm:
      plain = crypto::xor_cipher(wire.bytes, controller_.symmetric_key());
      break;
    case LegacyFamily::ZeroAccessV1: {
      if (wire.bytes.size() < 8) return std::nullopt;
      sig = read_be64(wire.bytes);
      crypto::Rc4 cipher(controller_.rc4_key());
      plain = cipher.process(BytesView(wire.bytes).subspan(8));
      break;
    }
    case LegacyFamily::Zeus: {
      if (wire.bytes.size() < 8) return std::nullopt;
      sig = read_be64(wire.bytes);
      plain = crypto::chained_xor_decrypt(
          BytesView(wire.bytes).subspan(8), controller_.symmetric_key());
      break;
    }
  }
  const auto command = untag(plain);
  if (!command) return std::nullopt;
  if (sig && !crypto::rsa_verify(controller_.public_key(), plain, *sig))
    return std::nullopt;
  // Faithful to the originals: no nonce cache, no timestamp window —
  // a replayed wire executes again.
  ++executed_;
  return command;
}

bool hijackable(LegacyFamily family) {
  return profile(family).signing_bits == 0;
}

LegacyWire forge_command(const LegacyController& controller,
                         const std::string& command) {
  const Bytes plain = tagged(command);
  LegacyWire wire;
  switch (controller.family()) {
    case LegacyFamily::Miner:
      wire.bytes = plain;
      break;
    case LegacyFamily::Storm:
      // The XOR key ships inside every bot binary; extracting it from a
      // captured sample is routine.
      wire.bytes = crypto::xor_cipher(plain, controller.symmetric_key());
      break;
    case LegacyFamily::ZeroAccessV1: {
      // No private key: the best a forger can do is garbage signature.
      wire.bytes = be64(0);
      crypto::Rc4 cipher(controller.rc4_key());
      append(wire.bytes, cipher.process(plain));
      break;
    }
    case LegacyFamily::Zeus:
      wire.bytes = be64(0);
      append(wire.bytes, crypto::chained_xor_encrypt(
                             plain, controller.symmetric_key()));
      break;
  }
  return wire;
}

}  // namespace onion::baselines
