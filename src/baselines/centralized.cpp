#include "baselines/centralized.hpp"

#include <set>

namespace onion::baselines {

std::size_t CentralizedBotnet::broadcast(const std::string& command) {
  if (seized_) return 0;
  for (std::uint32_t bot = 0; bot < num_bots_; ++bot) {
    // Pull model: each bot polls the C&C and fetches the command; both
    // directions land in the defender's flow log.
    flows_.push_back(FlowRecord{bot, /*dst=*/0, /*bytes=*/64, true});
    flows_.push_back(
        FlowRecord{bot, /*dst=*/0, command.size() + 16, false});
  }
  return num_bots_;
}

std::size_t CentralizedBotnet::bots_exposed() const {
  std::set<std::uint32_t> seen;
  for (const FlowRecord& f : flows_) seen.insert(f.src);
  return seen.size();
}

}  // namespace onion::baselines
