#include "tor/consensus.hpp"

#include <algorithm>

namespace onion::tor {

Consensus::Consensus(std::vector<Entry> entries, SimTime published_at)
    : entries_(std::move(entries)), published_at_(published_at) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return fingerprint_less(a.fingerprint, b.fingerprint);
            });
  for (const Entry& e : entries_)
    if (e.hsdir) hsdirs_.push_back(e);
}

std::vector<RelayId> Consensus::responsible_hsdirs(
    const DescriptorId& id) const {
  std::vector<RelayId> out;
  if (hsdirs_.empty()) return out;

  // Descriptor IDs and fingerprints share the 160-bit ring; compare the
  // raw 20-byte strings. First HSDir strictly after `id`, wrapping.
  Fingerprint point;
  std::copy(id.begin(), id.end(), point.begin());
  auto it = std::upper_bound(
      hsdirs_.begin(), hsdirs_.end(), point,
      [](const Fingerprint& p, const Entry& e) {
        return fingerprint_less(p, e.fingerprint);
      });

  const std::size_t want = std::min(kHsdirsPerReplica, hsdirs_.size());
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    if (it == hsdirs_.end()) it = hsdirs_.begin();
    out.push_back(it->relay);
    ++it;
  }
  return out;
}

std::vector<RelayId> Consensus::relay_ids() const {
  std::vector<RelayId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.relay);
  return out;
}

}  // namespace onion::tor
