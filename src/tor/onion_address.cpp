#include "tor/onion_address.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha1.hpp"

namespace onion::tor {

OnionAddress OnionAddress::from_public_key(const crypto::RsaPublicKey& pub) {
  const crypto::Sha1Digest digest = crypto::Sha1::hash(pub.serialize());
  OnionAddress addr;
  std::copy_n(digest.begin(), addr.id_.size(), addr.id_.begin());
  return addr;
}

OnionAddress OnionAddress::from_hostname(const std::string& hostname) {
  std::string name = hostname;
  constexpr std::string_view kSuffix = ".onion";
  if (name.size() >= kSuffix.size() &&
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
          0) {
    name.resize(name.size() - kSuffix.size());
  }
  if (name.size() != 16)
    throw std::invalid_argument("OnionAddress: hostname must be 16 chars");
  const Bytes raw = base32_decode(name);
  if (raw.size() != 10)
    throw std::invalid_argument("OnionAddress: bad identifier length");
  OnionAddress addr;
  std::copy_n(raw.begin(), addr.id_.size(), addr.id_.begin());
  return addr;
}

std::string OnionAddress::hostname() const {
  return base32_encode(BytesView(id_.data(), id_.size())) + ".onion";
}

}  // namespace onion::tor
