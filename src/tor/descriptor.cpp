#include "tor/descriptor.hpp"

namespace onion::tor {

std::uint64_t time_period(std::uint64_t now_seconds,
                          std::uint8_t permanent_id_byte) {
  // (current-time + permanent-id-byte * 86400 / 256) / 86400
  return (now_seconds +
          static_cast<std::uint64_t>(permanent_id_byte) * 86400 / 256) /
         86400;
}

crypto::Sha1Digest secret_id_part(std::uint64_t period,
                                  BytesView descriptor_cookie,
                                  std::uint8_t replica) {
  Bytes input = be64(period);
  append(input, descriptor_cookie);
  input.push_back(replica);
  return crypto::Sha1::hash(input);
}

DescriptorId descriptor_id(const OnionAddress& address, std::uint64_t period,
                           BytesView descriptor_cookie,
                           std::uint8_t replica) {
  const crypto::Sha1Digest secret =
      secret_id_part(period, descriptor_cookie, replica);
  const Bytes input =
      concat(address.identifier_bytes(), crypto::digest_bytes(secret));
  return crypto::Sha1::hash(input);
}

std::vector<DescriptorId> descriptor_ids_at(const OnionAddress& address,
                                            SimTime now,
                                            BytesView descriptor_cookie) {
  const std::uint64_t period =
      time_period(to_seconds(now), address.identifier()[0]);
  std::vector<DescriptorId> ids;
  ids.reserve(kReplicas);
  for (int replica = 0; replica < kReplicas; ++replica) {
    ids.push_back(descriptor_id(address, period, descriptor_cookie,
                                static_cast<std::uint8_t>(replica)));
  }
  return ids;
}

std::vector<DescriptorId> descriptor_ids_for_upload(
    const OnionAddress& address, SimTime now, BytesView descriptor_cookie) {
  const std::uint64_t period =
      time_period(to_seconds(now), address.identifier()[0]);
  std::vector<DescriptorId> ids;
  ids.reserve(2 * kReplicas);
  for (const std::uint64_t p : {period, period + 1}) {
    for (int replica = 0; replica < kReplicas; ++replica) {
      ids.push_back(descriptor_id(address, p, descriptor_cookie,
                                  static_cast<std::uint8_t>(replica)));
    }
  }
  return ids;
}

Bytes HiddenServiceDescriptor::signed_body() const {
  Bytes body = address.identifier_bytes();
  append(body, service_key.serialize());
  for (const RelayId ip : introduction_points)
    append(body, be64(static_cast<std::uint64_t>(ip)));
  append(body, be64(published_at));
  return body;
}

bool HiddenServiceDescriptor::verify() const {
  if (OnionAddress::from_public_key(service_key) != address) return false;
  return crypto::rsa_verify(service_key, signed_body(), signature);
}

}  // namespace onion::tor
