#include "tor/tor_network.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "crypto/hmac.hpp"

namespace onion::tor {

namespace {
constexpr std::size_t kMaxPayload = 64 * 1024;
// Reply-direction cells use a disjoint sequence range so hop keystreams
// are never reused across directions.
constexpr std::uint64_t kReplySeqBase = 1ULL << 32;

// Payload framing: 4-byte big-endian length, then the bytes, chunked into
// cells (zero padding in the last cell).
std::vector<Cell> frame_into_cells(BytesView payload) {
  Bytes framed;
  framed.reserve(4 + payload.size());
  framed.push_back(static_cast<std::uint8_t>(payload.size() >> 24));
  framed.push_back(static_cast<std::uint8_t>(payload.size() >> 16));
  framed.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  framed.push_back(static_cast<std::uint8_t>(payload.size()));
  append(framed, payload);
  std::vector<Cell> cells;
  for (std::size_t off = 0; off < framed.size(); off += kCellSize) {
    const std::size_t take = std::min(kCellSize, framed.size() - off);
    cells.push_back(make_cell(BytesView(framed.data() + off, take)));
  }
  if (cells.empty()) cells.push_back(Cell{});
  return cells;
}

// Inverse of frame_into_cells.
Bytes unframe_cells(const std::vector<Cell>& cells) {
  Bytes framed;
  framed.reserve(cells.size() * kCellSize);
  for (const Cell& c : cells)
    framed.insert(framed.end(), c.bytes.begin(), c.bytes.end());
  ONION_ENSURES(framed.size() >= 4);
  const std::size_t len = static_cast<std::size_t>(framed[0]) << 24 |
                          static_cast<std::size_t>(framed[1]) << 16 |
                          static_cast<std::size_t>(framed[2]) << 8 |
                          static_cast<std::size_t>(framed[3]);
  ONION_ENSURES(4 + len <= framed.size());
  return Bytes(framed.begin() + 4,
               framed.begin() + 4 + static_cast<std::ptrdiff_t>(len));
}

std::size_t cells_for(std::size_t payload_size) {
  return (4 + payload_size + kCellSize - 1) / kCellSize;
}
}  // namespace

const char* to_string(ConnectError error) {
  switch (error) {
    case ConnectError::DescriptorNotFound:
      return "descriptor-not-found";
    case ConnectError::ServiceUnreachable:
      return "service-unreachable";
    case ConnectError::DescriptorInvalid:
      return "descriptor-invalid";
  }
  return "unknown";
}

SimDuration TorNetwork::Circuit::total_latency() const {
  SimDuration total = 0;
  for (const SimDuration l : latencies) total += l;
  return total;
}

TorNetwork::TorNetwork(sim::Simulator& simulator, TorConfig config,
                       std::uint64_t seed)
    : sim_(simulator), config_(config), rng_(seed) {
  ONION_EXPECTS(config_.num_relays > config_.circuit_hops);
  ONION_EXPECTS(config_.circuit_hops >= 1);
  for (std::size_t i = 0; i < config_.num_relays; ++i) {
    Fingerprint fp;
    for (auto& b : fp) b = static_cast<std::uint8_t>(rng_.next_u64());
    Bytes secret(32);
    for (auto& b : secret) b = static_cast<std::uint8_t>(rng_.next_u64());
    relays_.push_back(std::make_unique<Relay>(
        static_cast<RelayId>(relays_.size()), fp, std::move(secret),
        /*hsdir_flag_at=*/SimTime{0}));
  }
  publish_consensus();
  sim_.schedule_daemon_in(kConsensusInterval, [this] { hourly_maintenance(); });
}

void TorNetwork::publish_consensus() {
  std::vector<Consensus::Entry> entries;
  entries.reserve(relays_.size());
  for (const auto& relay : relays_) {
    if (!relay->alive()) continue;  // retired relays drop out
    entries.push_back(Consensus::Entry{relay->fingerprint(), relay->id(),
                                       relay->has_hsdir_flag(sim_.now())});
  }
  consensus_ = Consensus(std::move(entries), sim_.now());
}

void TorNetwork::hourly_maintenance() {
  publish_consensus();
  for (const auto& relay : relays_) relay->expire_descriptors(sim_.now());
  for (auto& [address, service] : services_) {
    repair_intro_points(service);
    upload_descriptors(service);
  }
  sim_.schedule_daemon_in(kConsensusInterval, [this] { hourly_maintenance(); });
}

void TorNetwork::repair_intro_points(Service& service) {
  // Replace introduction points that left the network; real onion
  // proxies notice the dead circuit and re-select.
  for (std::size_t i = 0; i < service.intro_points.size(); ++i) {
    if (relays_.at(service.intro_points[i])->alive()) continue;
    const std::vector<RelayId> pool = consensus_.relay_ids();
    for (int attempt = 0; attempt < 64; ++attempt) {
      const RelayId candidate = rng_.pick(pool);
      if (!relays_.at(candidate)->alive()) continue;
      if (std::find(service.intro_points.begin(),
                    service.intro_points.end(),
                    candidate) != service.intro_points.end())
        continue;
      service.intro_points[i] = candidate;
      service.intro_circuits[i] =
          build_circuit(service.host, candidate).hops;
      break;
    }
  }
}

EndpointId TorNetwork::create_endpoint() {
  return static_cast<EndpointId>(num_endpoints_++);
}

RelayId TorNetwork::add_relay() {
  Fingerprint fp;
  for (auto& b : fp) b = static_cast<std::uint8_t>(rng_.next_u64());
  Bytes secret(32);
  for (auto& b : secret) b = static_cast<std::uint8_t>(rng_.next_u64());
  const RelayId id = static_cast<RelayId>(relays_.size());
  relays_.push_back(std::make_unique<Relay>(
      id, fp, std::move(secret),
      /*hsdir_flag_at=*/sim_.now() + kHsdirFlagUptime));
  return id;
}

void TorNetwork::retire_relay(RelayId relay) {
  relays_.at(relay)->retire();
}

Bytes TorNetwork::hop_key_for(RelayId relay,
                              std::uint64_t circuit_nonce) const {
  // Simulated circuit handshake: both ends derive the hop key from the
  // relay's long-term secret and the fresh per-circuit nonce (stand-in
  // for the ntor DH exchange).
  const crypto::Sha256Digest key =
      crypto::hmac_sha256(relays_.at(relay)->link_secret(),
                          be64(circuit_nonce));
  return Bytes(key.begin(), key.end());
}

RelayId TorNetwork::guard_for(EndpointId owner,
                              std::optional<RelayId> avoid) {
  std::vector<RelayId>& guards = guards_[owner];
  // Drop guards that left the network; real clients rotate on failure.
  std::erase_if(guards,
                [this](RelayId g) { return !relays_.at(g)->alive(); });
  const std::vector<RelayId> pool = consensus_.relay_ids();
  int attempts = 0;
  while (guards.size() < config_.guards_per_endpoint && attempts++ < 256) {
    const RelayId candidate = rng_.pick(pool);
    if (!relays_.at(candidate)->alive()) continue;
    if (std::find(guards.begin(), guards.end(), candidate) != guards.end())
      continue;
    guards.push_back(candidate);
  }
  std::vector<RelayId> usable;
  for (const RelayId g : guards)
    if (!avoid || g != *avoid) usable.push_back(g);
  if (!usable.empty()) return rng_.pick(usable);
  // Degenerate fallback (tiny network): any live relay other than avoid.
  for (int attempt = 0; attempt < 256; ++attempt) {
    const RelayId candidate = rng_.pick(pool);
    if (relays_.at(candidate)->alive() &&
        (!avoid || candidate != *avoid))
      return candidate;
  }
  return pool.front();
}

std::vector<RelayId> TorNetwork::guards_of(EndpointId endpoint) const {
  const auto it = guards_.find(endpoint);
  return it == guards_.end() ? std::vector<RelayId>{} : it->second;
}

TorNetwork::Circuit TorNetwork::build_circuit(
    EndpointId owner, std::optional<RelayId> final_hop) {
  std::vector<RelayId> pool;
  for (const RelayId id : consensus_.relay_ids())
    if (relays_.at(id)->alive()) pool.push_back(id);
  ONION_EXPECTS(pool.size() > config_.circuit_hops);
  Circuit circuit;
  const std::uint64_t nonce = rng_.next_u64();
  if (config_.use_entry_guards && config_.circuit_hops >= 2)
    circuit.hops.push_back(guard_for(owner, final_hop));
  while (circuit.hops.size() + 1 < config_.circuit_hops) {
    const RelayId candidate = rng_.pick(pool);
    if (final_hop && candidate == *final_hop) continue;
    if (std::find(circuit.hops.begin(), circuit.hops.end(), candidate) !=
        circuit.hops.end())
      continue;
    circuit.hops.push_back(candidate);
  }
  if (final_hop) {
    circuit.hops.push_back(*final_hop);
  } else {
    for (;;) {
      const RelayId candidate = rng_.pick(pool);
      if (std::find(circuit.hops.begin(), circuit.hops.end(), candidate) ==
          circuit.hops.end()) {
        circuit.hops.push_back(candidate);
        break;
      }
    }
  }
  for (const RelayId hop : circuit.hops) {
    circuit.keys.push_back(hop_key_for(hop, nonce));
    circuit.latencies.push_back(config_.hop_latency.sample(rng_));
    // CREATE/CREATED cell pair per hop.
    relays_.at(hop)->count_cell();
    relays_.at(hop)->count_cell();
    stats_.cells_forwarded += 2;
  }
  ++stats_.circuits_built;
  return circuit;
}

OnionAddress TorNetwork::publish_service(EndpointId host,
                                         const crypto::RsaKeyPair& key,
                                         ServiceHandler handler,
                                         Bytes descriptor_cookie) {
  ONION_EXPECTS(host < num_endpoints_);
  ONION_EXPECTS(handler != nullptr);
  Service service;
  service.key = key;
  service.address = OnionAddress::from_public_key(key.pub);
  service.host = host;
  service.handler = std::move(handler);
  service.cookie = std::move(descriptor_cookie);

  // Step 1 (Figure 1): choose introduction points, build standing
  // circuits to them.
  const std::vector<RelayId> pool = consensus_.relay_ids();
  const std::size_t want = std::min(config_.intro_points, pool.size());
  int attempts = 0;
  while (service.intro_points.size() < want && attempts++ < 1024) {
    const RelayId candidate = rng_.pick(pool);
    if (!relays_.at(candidate)->alive()) continue;
    if (std::find(service.intro_points.begin(), service.intro_points.end(),
                  candidate) != service.intro_points.end())
      continue;
    service.intro_points.push_back(candidate);
    service.intro_circuits.push_back(
        build_circuit(host, candidate).hops);
  }

  const OnionAddress address = service.address;
  services_[address] = std::move(service);
  // Step 2: compute descriptors and upload to responsible HSDirs.
  upload_descriptors(services_[address]);
  return address;
}

void TorNetwork::upload_descriptors(Service& service) {
  HiddenServiceDescriptor desc;
  desc.address = service.address;
  desc.service_key = service.key.pub;
  desc.introduction_points = service.intro_points;
  desc.published_at = sim_.now();
  desc.signature = crypto::rsa_sign(service.key, desc.signed_body());

  for (const DescriptorId& id : descriptor_ids_for_upload(
           service.address, sim_.now(), service.cookie)) {
    for (const RelayId hsdir : consensus_.responsible_hsdirs(id)) {
      relays_.at(hsdir)->store_descriptor(id, desc);
      relays_.at(hsdir)->count_cell();
      ++stats_.cells_forwarded;
      ++stats_.descriptors_published;
    }
  }
}

bool TorNetwork::unpublish_service(EndpointId host,
                                   const OnionAddress& address) {
  const auto it = services_.find(address);
  if (it == services_.end() || it->second.host != host) return false;
  services_.erase(it);
  return true;
}

bool TorNetwork::service_online(const OnionAddress& address) const {
  return services_.count(address) > 0;
}

RelayId TorNetwork::inject_relay(const Fingerprint& fingerprint) {
  Bytes secret(32);
  for (auto& b : secret) b = static_cast<std::uint8_t>(rng_.next_u64());
  const RelayId id = static_cast<RelayId>(relays_.size());
  relays_.push_back(std::make_unique<Relay>(
      id, fingerprint, std::move(secret),
      /*hsdir_flag_at=*/sim_.now() + kHsdirFlagUptime));
  return id;
}

void TorNetwork::set_relay_denying(RelayId relay, bool denying) {
  relays_.at(relay)->set_denying(denying);
}

std::vector<std::vector<RelayId>> TorNetwork::responsible_hsdirs_now(
    const OnionAddress& address, BytesView descriptor_cookie) const {
  std::vector<std::vector<RelayId>> out;
  for (const DescriptorId& id :
       descriptor_ids_at(address, sim_.now(), descriptor_cookie))
    out.push_back(consensus_.responsible_hsdirs(id));
  return out;
}

double TorNetwork::mean_relayed_cell_entropy() const {
  if (entropy_samples_ == 0) return 0.0;
  return entropy_sum_ / static_cast<double>(entropy_samples_);
}

/// Per-connection state machine.
struct TorNetwork::Pending {
  EndpointId client = kInvalidEndpoint;
  OnionAddress destination;
  Bytes payload;
  ConnectCallback callback;
  Bytes cookie;
  bool done = false;

  /// Descriptor search: (hsdir relay, descriptor id) candidates in try
  /// order (replica 0's HSDirs first, then replica 1's).
  std::vector<std::pair<RelayId, DescriptorId>> candidates;
  std::size_t next_candidate = 0;

  HiddenServiceDescriptor descriptor;
  Circuit client_circuit;   // client -> ... -> RP
  Circuit service_circuit;  // service -> ... -> RP
  Bytes rend_key;
};

void TorNetwork::connect_and_send(EndpointId client,
                                  const OnionAddress& destination,
                                  Bytes payload, ConnectCallback callback,
                                  Bytes descriptor_cookie) {
  ONION_EXPECTS(client < num_endpoints_);
  ONION_EXPECTS(callback != nullptr);
  ONION_EXPECTS(payload.size() <= kMaxPayload);
  auto conn = std::make_shared<Pending>();
  conn->client = client;
  conn->destination = destination;
  conn->payload = std::move(payload);
  conn->callback = std::move(callback);
  conn->cookie = std::move(descriptor_cookie);
  // Step 3 (Figure 1): compute descriptor IDs and responsible HSDirs.
  sim_.schedule_in(config_.hop_latency.sample(rng_),
                   [this, conn] { start_descriptor_fetch(conn); });
}

void TorNetwork::start_descriptor_fetch(std::shared_ptr<Pending> conn) {
  for (const DescriptorId& id :
       descriptor_ids_at(conn->destination, sim_.now(), conn->cookie)) {
    for (const RelayId hsdir : consensus_.responsible_hsdirs(id))
      conn->candidates.emplace_back(hsdir, id);
  }
  try_next_hsdir(std::move(conn));
}

void TorNetwork::try_next_hsdir(std::shared_ptr<Pending> conn) {
  if (conn->done) return;
  if (conn->next_candidate >= conn->candidates.size()) {
    fail(std::move(conn), ConnectError::DescriptorNotFound);
    return;
  }
  const auto [hsdir, desc_id] = conn->candidates[conn->next_candidate++];
  // One circuit to the HSDir plus a request/response round trip.
  const Circuit circuit = build_circuit(conn->client, hsdir);
  for (const RelayId hop : circuit.hops) {
    relays_.at(hop)->count_cell();
    relays_.at(hop)->count_cell();
    stats_.cells_forwarded += 2;
  }
  const SimDuration rtt = 2 * circuit.total_latency();
  ++stats_.descriptor_fetch_attempts;
  sim_.schedule_in(rtt, [this, conn, hsdir, desc_id]() mutable {
    if (conn->done) return;
    const auto fetched =
        relays_.at(hsdir)->fetch_descriptor(desc_id, sim_.now());
    if (!fetched) {
      ++stats_.descriptor_fetch_failures;
      try_next_hsdir(std::move(conn));
      return;
    }
    if (!fetched->verify()) {
      ++stats_.descriptor_fetch_failures;
      fail(std::move(conn), ConnectError::DescriptorInvalid);
      return;
    }
    begin_rendezvous(std::move(conn), *fetched);
  });
}

void TorNetwork::begin_rendezvous(std::shared_ptr<Pending> conn,
                                  HiddenServiceDescriptor descriptor) {
  conn->descriptor = std::move(descriptor);
  // Step 4: circuit to a random rendezvous point (the circuit's last hop)
  // plus ESTABLISH_RENDEZVOUS round trip.
  conn->client_circuit = build_circuit(conn->client, std::nullopt);
  conn->rend_key.resize(32);
  for (auto& b : conn->rend_key)
    b = static_cast<std::uint8_t>(rng_.next_u64());

  // Step 5: INTRODUCE1 through a random introduction point. Its payload —
  // rendezvous point and rendezvous key — is public-key encrypted to the
  // service, as in real Tor. A stale descriptor may list retired relays;
  // the client only reaches the live ones, and a descriptor whose intro
  // points have all churned away means waiting out the rendezvous
  // timeout.
  ONION_EXPECTS(!conn->descriptor.introduction_points.empty());
  std::vector<RelayId> live_intros;
  for (const RelayId ip : conn->descriptor.introduction_points)
    if (relays_.at(ip)->alive()) live_intros.push_back(ip);
  if (live_intros.empty()) {
    sim_.schedule_in(config_.rendezvous_timeout, [this, conn]() mutable {
      fail(std::move(conn), ConnectError::ServiceUnreachable);
    });
    return;
  }
  const RelayId intro_point = rng_.pick(live_intros);
  const Circuit intro_circuit = build_circuit(conn->client, intro_point);

  const SimDuration establish_rtt = 2 * conn->client_circuit.total_latency();
  const SimDuration introduce_delay = intro_circuit.total_latency();
  for (const RelayId hop : intro_circuit.hops) {
    relays_.at(hop)->count_cell();
    ++stats_.cells_forwarded;
  }

  // Step 6: the introduction point forwards INTRODUCE2 to the service
  // over the service's standing intro circuit; step 7: the service
  // builds a circuit to the RP and sends RENDEZVOUS1.
  sim_.schedule_in(
      establish_rtt + introduce_delay, [this, conn]() mutable {
        if (conn->done) return;
        const auto it = services_.find(conn->destination);
        if (it == services_.end()) {
          // Service is gone: the client's rendezvous wait times out.
          sim_.schedule_in(config_.rendezvous_timeout,
                           [this, conn]() mutable {
                             fail(std::move(conn),
                                  ConnectError::ServiceUnreachable);
                           });
          return;
        }
        Service& service = it->second;
        // INTRODUCE2 travels the service's standing intro circuit.
        for (const RelayId hop : service.intro_circuits.front()) {
          relays_.at(hop)->count_cell();
          ++stats_.cells_forwarded;
        }
        const RelayId rp = conn->client_circuit.hops.back();
        conn->service_circuit = build_circuit(service.host, rp);
        const SimDuration join_delay =
            conn->service_circuit.total_latency();
        sim_.schedule_in(join_delay, [this, conn]() mutable {
          deliver_through_rendezvous(std::move(conn));
        });
      });
}

void TorNetwork::deliver_through_rendezvous(std::shared_ptr<Pending> conn) {
  if (conn->done) return;
  // Request leg: client wraps each framed cell end-to-end under the
  // rendezvous key and once per client-circuit hop; hops peel in path
  // order; the RP then pushes the cell down the service's circuit, whose
  // hops each add a layer the service peels on arrival.
  const std::vector<Cell> cells = frame_into_cells(conn->payload);
  const auto& up = conn->client_circuit;    // client -> RP
  const auto& down = conn->service_circuit; // service -> RP

  std::vector<Cell> at_service_cells;
  at_service_cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::uint64_t seq = c;
    Cell wire = crypt_layer(conn->rend_key, seq, cells[c]);
    wire = onion_wrap(up.keys, seq, wire);
    // Client-side hops peel.
    for (std::size_t h = 0; h < up.hops.size(); ++h) {
      relays_.at(up.hops[h])->count_cell();
      ++stats_.cells_forwarded;
      wire = crypt_layer(up.keys[h], seq, wire);
      entropy_sum_ += cell_entropy(wire);
      ++entropy_samples_;
    }
    // Service-side hops add layers from the RP inward (skip the RP slot:
    // it already handled the cell above).
    for (std::size_t h = down.hops.size(); h-- > 0;) {
      wire = crypt_layer(down.keys[h], seq, wire);
      if (h != down.hops.size() - 1) {
        relays_.at(down.hops[h])->count_cell();
        ++stats_.cells_forwarded;
        entropy_sum_ += cell_entropy(wire);
        ++entropy_samples_;
      }
    }
    // The service peels its circuit layers and the rendezvous layer.
    Cell at_service = wire;
    for (std::size_t h = 0; h < down.hops.size(); ++h)
      at_service = crypt_layer(down.keys[h], seq, at_service);
    at_service = crypt_layer(conn->rend_key, seq, at_service);
    at_service_cells.push_back(at_service);
  }
  ONION_ENSURES(at_service_cells.size() == cells_for(conn->payload.size()));
  const Bytes request = unframe_cells(at_service_cells);
  const SimDuration arrival = up.total_latency() + down.total_latency();

  sim_.schedule_in(arrival, [this, conn, request]() mutable {
    if (conn->done) return;
    const auto it = services_.find(conn->destination);
    if (it == services_.end()) {
      fail(std::move(conn), ConnectError::ServiceUnreachable);
      return;
    }
    const Bytes reply = it->second.handler(request, conn->destination);
    // Reply leg: symmetric, reversed roles, disjoint sequence range.
    const auto& down2 = conn->service_circuit;
    const auto& up2 = conn->client_circuit;
    const std::vector<Cell> reply_cells = frame_into_cells(reply);
    std::vector<Cell> at_client_cells;
    at_client_cells.reserve(reply_cells.size());
    for (std::size_t c = 0; c < reply_cells.size(); ++c) {
      const std::uint64_t seq = kReplySeqBase + c;
      Cell wire = crypt_layer(conn->rend_key, seq, reply_cells[c]);
      wire = onion_wrap(down2.keys, seq, wire);
      for (std::size_t h = 0; h < down2.hops.size(); ++h) {
        relays_.at(down2.hops[h])->count_cell();
        ++stats_.cells_forwarded;
        wire = crypt_layer(down2.keys[h], seq, wire);
      }
      for (std::size_t h = up2.hops.size(); h-- > 0;) {
        wire = crypt_layer(up2.keys[h], seq, wire);
        if (h != up2.hops.size() - 1) {
          relays_.at(up2.hops[h])->count_cell();
          ++stats_.cells_forwarded;
        }
      }
      Cell at_client = wire;
      for (std::size_t h = 0; h < up2.hops.size(); ++h)
        at_client = crypt_layer(up2.keys[h], seq, at_client);
      at_client = crypt_layer(conn->rend_key, seq, at_client);
      at_client_cells.push_back(at_client);
    }
    const Bytes reassembled = unframe_cells(at_client_cells);
    const SimDuration reply_delay =
        down2.total_latency() + up2.total_latency();
    sim_.schedule_in(reply_delay, [this, conn, reassembled]() mutable {
      succeed(std::move(conn), reassembled);
    });
  });
}

void TorNetwork::fail(std::shared_ptr<Pending> conn, ConnectError error) {
  if (conn->done) return;
  conn->done = true;
  ++stats_.connections_failed;
  ConnectResult result;
  result.ok = false;
  result.error = error;
  result.completed_at = sim_.now();
  conn->callback(result);
}

void TorNetwork::succeed(std::shared_ptr<Pending> conn, Bytes reply) {
  if (conn->done) return;
  conn->done = true;
  ++stats_.connections_ok;
  ConnectResult result;
  result.ok = true;
  result.reply = std::move(reply);
  result.completed_at = sim_.now();
  conn->callback(result);
}

}  // namespace onion::tor
