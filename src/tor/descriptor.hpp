// Hidden-service descriptors and the descriptor-ID schedule, implementing
// the paper's formulas (Section III) verbatim:
//
//   descriptor-id  = H(Identifier || secret-id-part)
//   secret-id-part = H(time-period || descriptor-cookie || replica)
//   time-period    = (current-time + permanent-id-byte * 86400 / 256)
//                    / 86400
//
// H is SHA-1; Identifier is the 80-bit service identifier;
// permanent-id-byte is the identifier's first byte (staggers rollover
// moments across services); replica is 0 or 1, giving two descriptor IDs
// per service per period.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/sha1.hpp"
#include "tor/onion_address.hpp"
#include "tor/types.hpp"

namespace onion::tor {

/// Descriptor ID: a point on the HSDir fingerprint ring.
using DescriptorId = crypto::Sha1Digest;

/// Number of descriptor replicas (real Tor uses 2).
constexpr int kReplicas = 2;

/// HSDirs responsible per replica (real Tor uses 3).
constexpr std::size_t kHsdirsPerReplica = 3;

/// time-period per the paper's formula. `now_seconds` is virtual UNIX-ish
/// time in seconds; `permanent_id_byte` is identifier[0].
std::uint64_t time_period(std::uint64_t now_seconds,
                          std::uint8_t permanent_id_byte);

/// secret-id-part = SHA-1(time-period(8B, BE) ‖ cookie ‖ replica(1B)).
/// The optional descriptor cookie is the paper's client-authorization
/// field; OnionBots leave it unset so any bot can resolve peers.
crypto::Sha1Digest secret_id_part(std::uint64_t period,
                                  BytesView descriptor_cookie,
                                  std::uint8_t replica);

/// descriptor-id = SHA-1(identifier ‖ secret-id-part).
DescriptorId descriptor_id(const OnionAddress& address, std::uint64_t period,
                           BytesView descriptor_cookie, std::uint8_t replica);

/// Convenience: both replica IDs for an address at virtual time `now`.
/// This is the *client* view — lookups use the current time-period only.
std::vector<DescriptorId> descriptor_ids_at(const OnionAddress& address,
                                            SimTime now,
                                            BytesView descriptor_cookie = {});

/// The IDs a service *uploads*: both replicas for the current time-period
/// plus both for the next. The period rolls over at a service-specific
/// second (now + permanent-id-byte * 337.5 s crossing a day boundary); a
/// service that only re-published on the hourly tick would be unresolvable
/// from the rollover until that tick. Real Tor OPs publish the upcoming
/// period's descriptor in advance; so do we.
std::vector<DescriptorId> descriptor_ids_for_upload(
    const OnionAddress& address, SimTime now,
    BytesView descriptor_cookie = {});

/// The published descriptor: what a hidden service uploads to its
/// responsible HSDirs and what clients fetch to find introduction points.
struct HiddenServiceDescriptor {
  OnionAddress address;
  crypto::RsaPublicKey service_key;
  std::vector<RelayId> introduction_points;
  /// Virtual publication time; HSDirs expire descriptors after 24 h.
  SimTime published_at = 0;
  /// Signature by the service key over the descriptor body.
  crypto::RsaSignature signature = 0;

  /// Canonical byte serialization of the signed body.
  Bytes signed_body() const;
  /// True iff `signature` verifies under `service_key` and the key matches
  /// `address` (hash-of-key check — the self-authenticating property of
  /// .onion names).
  bool verify() const;
};

}  // namespace onion::tor
