// The simulated Tor network: relays, hourly consensus, hidden-service
// publication and lookup, and the full 7-step rendezvous protocol of the
// paper's Figure 1, driven by the discrete-event simulator.
//
// Data cells are protected exactly the way Tor protects them: an
// end-to-end rendezvous key between client and service (established
// through the INTRODUCE payload, which is public-key encrypted to the
// service), plus one onion layer per circuit hop. The rendezvous point
// and every intermediate relay observe only fixed-size, high-entropy
// cells — the property OnionBots exploit to hide source, destination, and
// nature of their traffic.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "tor/cell.hpp"
#include "tor/consensus.hpp"
#include "tor/descriptor.hpp"
#include "tor/relay.hpp"

namespace onion::tor {

/// Why a hidden-service connection failed.
enum class ConnectError {
  /// No responsible HSDir returned a valid descriptor (unpublished,
  /// expired, or all responsible HSDirs are denying/taken over).
  DescriptorNotFound,
  /// Descriptor fetched but the service never completed the rendezvous
  /// (host offline / service unpublished after descriptor upload).
  ServiceUnreachable,
  /// The fetched descriptor failed signature / hash-of-key verification.
  DescriptorInvalid,
};

/// Human-readable error name.
const char* to_string(ConnectError error);

/// Outcome of TorNetwork::connect_and_send.
struct ConnectResult {
  bool ok = false;
  /// Service handler's reply (when ok).
  Bytes reply;
  /// Failure reason (when !ok).
  std::optional<ConnectError> error;
  /// Virtual time the outcome was determined.
  SimTime completed_at = 0;
};

/// A hidden service's request handler: receives the request payload and
/// returns the reply payload. Runs at the hosting endpoint.
using ServiceHandler =
    std::function<Bytes(BytesView request, const OnionAddress& to)>;

/// Completion callback of connect_and_send.
using ConnectCallback = std::function<void(const ConnectResult&)>;

/// Network-wide tuning knobs.
struct TorConfig {
  /// Founding relays (created with the HSDir flag already earned).
  std::size_t num_relays = 30;
  /// Hops per circuit (Tor uses 3).
  std::size_t circuit_hops = 3;
  /// Introduction points per hidden service.
  std::size_t intro_points = 3;
  /// Per-hop one-way latency model.
  sim::LatencyModel hop_latency{};
  /// How long a client waits for the service before reporting
  /// ServiceUnreachable.
  SimDuration rendezvous_timeout = 45 * kSecond;
  /// Entry guards (real Tor): every endpoint pins a small set of first
  /// hops instead of sampling them per circuit, bounding exposure to
  /// malicious relays. Applies when circuits have >= 2 hops.
  bool use_entry_guards = true;
  std::size_t guards_per_endpoint = 3;
};

/// Aggregate counters, exposed for tests and benches.
struct TorStats {
  std::uint64_t circuits_built = 0;
  std::uint64_t cells_forwarded = 0;
  std::uint64_t descriptors_published = 0;
  std::uint64_t descriptor_fetch_attempts = 0;
  std::uint64_t descriptor_fetch_failures = 0;
  std::uint64_t connections_ok = 0;
  std::uint64_t connections_failed = 0;
};

/// The simulated network. Single facade object; all interaction with the
/// privacy infrastructure goes through it.
class TorNetwork {
 public:
  /// Builds the founding relay population and publishes the first
  /// consensus at the simulator's current time; re-publishes hourly.
  TorNetwork(sim::Simulator& simulator, TorConfig config, std::uint64_t seed);

  TorNetwork(const TorNetwork&) = delete;
  TorNetwork& operator=(const TorNetwork&) = delete;

  /// --- endpoints ----------------------------------------------------
  /// Registers a host (onion-proxy owner); returns its handle.
  EndpointId create_endpoint();

  /// --- hidden services ----------------------------------------------
  /// Hosts a service for `key` at `host`: chooses introduction points,
  /// uploads descriptors to the responsible HSDirs of both replicas, and
  /// re-publishes on the hourly maintenance tick. Returns the address.
  ///
  /// A non-empty `descriptor_cookie` is the paper's Section III client-
  /// authorization field: descriptor IDs derive from it, so clients who
  /// lack the cookie cannot even locate the responsible HSDirs.
  OnionAddress publish_service(EndpointId host,
                               const crypto::RsaKeyPair& key,
                               ServiceHandler handler,
                               Bytes descriptor_cookie = {});

  /// Stops hosting `address` at `host`; returns false if it was not
  /// hosted there. Already-uploaded descriptors linger on HSDirs until
  /// they expire — exactly the window real takedowns face.
  bool unpublish_service(EndpointId host, const OnionAddress& address);

  /// True iff some endpoint currently hosts `address`.
  bool service_online(const OnionAddress& address) const;

  /// --- client side ----------------------------------------------------
  /// Full rendezvous connection: descriptor lookup, rendezvous-point
  /// setup, introduction, rendezvous join, payload delivery, reply. The
  /// callback fires exactly once, at the virtual time the outcome is
  /// known. Payload size is limited to 64 KiB. For cookie-protected
  /// services the client must supply the matching `descriptor_cookie`
  /// or the lookup fails with DescriptorNotFound.
  void connect_and_send(EndpointId client, const OnionAddress& destination,
                        Bytes payload, ConnectCallback callback,
                        Bytes descriptor_cookie = {});

  /// --- relay churn -----------------------------------------------------
  /// A fresh relay joins: random fingerprint, HSDir flag after 25 h of
  /// uptime, appears in the next consensus (or refresh_consensus()).
  RelayId add_relay();

  /// Operator shutdown: the relay stops serving immediately and drops
  /// out of the next consensus. Services using it as an introduction
  /// point repair themselves on the hourly maintenance tick.
  void retire_relay(RelayId relay);

  /// Publishes a consensus now (tests; the hourly tick does this too).
  void refresh_consensus() { publish_consensus(); }

  /// --- adversary hooks (mitigation experiments) ----------------------
  /// Injects a relay with a chosen fingerprint. It enters the next
  /// consensus but earns the HSDir flag only after 25 hours of uptime —
  /// the positioning delay of paper Section VI-A.
  RelayId inject_relay(const Fingerprint& fingerprint);

  /// Marks a relay as a descriptor-denying HSDir (takeover mitigation).
  void set_relay_denying(RelayId relay, bool denying);

  /// The relays that would store descriptors for `address` right now, per
  /// replica — what an adversary must occupy to deny service.
  std::vector<std::vector<RelayId>> responsible_hsdirs_now(
      const OnionAddress& address, BytesView descriptor_cookie = {}) const;

  /// Entry guards currently pinned by `endpoint` (empty until its first
  /// circuit, or when guards are disabled).
  std::vector<RelayId> guards_of(EndpointId endpoint) const;

  /// --- introspection --------------------------------------------------
  const Consensus& consensus() const { return consensus_; }
  const Relay& relay(RelayId id) const { return *relays_.at(id); }
  std::size_t num_relays() const { return relays_.size(); }
  const TorStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

  /// Average entropy (bits/byte) of data cells observed at relays so far;
  /// ~8.0 means relayed traffic is indistinguishable from random bytes.
  double mean_relayed_cell_entropy() const;

 private:
  struct Service {
    crypto::RsaKeyPair key;
    OnionAddress address;
    EndpointId host = kInvalidEndpoint;
    ServiceHandler handler;
    Bytes cookie;
    std::vector<RelayId> intro_points;
    /// Standing circuits service -> intro point (hop lists + keys).
    std::vector<std::vector<RelayId>> intro_circuits;
  };

  struct Circuit {
    std::vector<RelayId> hops;
    std::vector<Bytes> keys;
    std::vector<SimDuration> latencies;
    SimDuration total_latency() const;
  };

  void publish_consensus();
  void hourly_maintenance();
  void repair_intro_points(Service& service);
  void upload_descriptors(Service& service);
  Circuit build_circuit(EndpointId owner, std::optional<RelayId> final_hop);
  /// The guard `owner` should use as first hop, avoiding `avoid`.
  RelayId guard_for(EndpointId owner, std::optional<RelayId> avoid);
  Bytes hop_key_for(RelayId relay, std::uint64_t circuit_nonce) const;

  // Connection state machine steps (see .cpp).
  struct Pending;
  void start_descriptor_fetch(std::shared_ptr<Pending> conn);
  void try_next_hsdir(std::shared_ptr<Pending> conn);
  void begin_rendezvous(std::shared_ptr<Pending> conn,
                        HiddenServiceDescriptor descriptor);
  void deliver_through_rendezvous(std::shared_ptr<Pending> conn);
  void fail(std::shared_ptr<Pending> conn, ConnectError error);
  void succeed(std::shared_ptr<Pending> conn, Bytes reply);

  sim::Simulator& sim_;
  TorConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Relay>> relays_;
  Consensus consensus_;
  std::size_t num_endpoints_ = 0;
  /// Keyed by an ordered map: hourly_maintenance walks every service and
  /// draws from rng_ while repairing intro points, so the iteration order
  /// is part of the deterministic replay contract (a hash map's order is
  /// stdlib-specific — detlint rule D1).
  std::map<OnionAddress, Service> services_;
  std::unordered_map<EndpointId, std::vector<RelayId>> guards_;
  TorStats stats_;
  double entropy_sum_ = 0.0;
  std::uint64_t entropy_samples_ = 0;
};

}  // namespace onion::tor
