#include "tor/address_cost.hpp"

#include <cmath>

#include "common/check.hpp"

namespace onion::tor {

namespace {
constexpr double kSecondsPerDay = 86'400.0;
constexpr double kSecondsPerYear = 365.25 * kSecondsPerDay;

double pow32(double chars) { return std::exp2(5.0 * chars); }
}  // namespace

double implied_keygen_rate_per_second() {
  return pow32(kShallotPrefixChars) /
         (kShallotPrefixDays * kSecondsPerDay);
}

double expected_probes_to_find_bot(double population) {
  ONION_EXPECTS(population > 0.0);
  return pow32(kOnionAddressChars) / population;
}

double expected_years_to_find_bot(double population,
                                  double probes_per_second) {
  ONION_EXPECTS(probes_per_second > 0.0);
  return expected_probes_to_find_bot(population) /
         (probes_per_second * kSecondsPerYear);
}

double vanity_prefix_days(int prefix_chars, double keys_per_second) {
  ONION_EXPECTS(prefix_chars >= 0 && prefix_chars <= kOnionAddressChars);
  const double rate = keys_per_second > 0.0
                          ? keys_per_second
                          : implied_keygen_rate_per_second();
  return pow32(static_cast<double>(prefix_chars)) /
         (rate * kSecondsPerDay);
}

}  // namespace onion::tor
