// Onion routers. Each relay has an identity fingerprint, an uptime record
// (the HSDir flag requires 25 hours — the delay the paper leans on when
// arguing HSDir-takeover mitigations are slow), a descriptor store, and
// adversarial state for the mitigation experiments.
#pragma once

#include <map>
#include <optional>

#include "common/clock.hpp"
#include "tor/descriptor.hpp"
#include "tor/types.hpp"

namespace onion::tor {

/// Uptime a relay needs before directory authorities grant the HSDir flag.
constexpr SimDuration kHsdirFlagUptime = 25 * kHour;

/// Stored descriptors expire after 24 hours (descriptor lifetime).
constexpr SimDuration kDescriptorLifetime = 24 * kHour;

/// One onion router.
class Relay {
 public:
  /// `hsdir_flag_at` is the virtual time the directory authorities grant
  /// the HSDir flag: 0 for founding relays (uptime already earned),
  /// creation time + kHsdirFlagUptime for freshly injected ones.
  Relay(RelayId id, Fingerprint fp, Bytes link_secret, SimTime hsdir_flag_at)
      : id_(id),
        fingerprint_(fp),
        link_secret_(std::move(link_secret)),
        hsdir_flag_at_(hsdir_flag_at) {}

  RelayId id() const { return id_; }
  const Fingerprint& fingerprint() const { return fingerprint_; }

  /// Long-term secret from which per-circuit hop keys are derived (the
  /// simulated handshake; see TorNetwork::build_circuit).
  const Bytes& link_secret() const { return link_secret_; }

  /// True iff the relay holds the HSDir flag at time `now`.
  bool has_hsdir_flag(SimTime now) const { return now >= hsdir_flag_at_; }

  /// --- HSDir store -------------------------------------------------
  /// Stores a descriptor (overwrites an existing one for the same ID).
  void store_descriptor(const DescriptorId& id,
                        const HiddenServiceDescriptor& desc);

  /// Fetches an unexpired descriptor. Returns std::nullopt if absent,
  /// expired, or this relay is compromised and denying service (the
  /// HSDir-takeover mitigation from paper Section VI-A).
  std::optional<HiddenServiceDescriptor> fetch_descriptor(
      const DescriptorId& id, SimTime now) const;

  /// Drops expired descriptors (housekeeping; fetch also checks expiry).
  void expire_descriptors(SimTime now);

  /// --- churn ---------------------------------------------------------
  /// Operator shutdown: the relay stops serving (descriptor fetches and
  /// stores fail); it drops out of the next consensus.
  void retire() { alive_ = false; }
  bool alive() const { return alive_; }

  /// --- adversary / accounting --------------------------------------
  /// A compromised HSDir accepts publications but denies every fetch.
  void set_denying(bool deny) { denying_ = deny; }
  bool denying() const { return denying_; }

  void count_cell() { ++cells_relayed_; }
  std::uint64_t cells_relayed() const { return cells_relayed_; }

  std::size_t stored_descriptor_count() const { return store_.size(); }

 private:
  RelayId id_;
  Fingerprint fingerprint_;
  Bytes link_secret_;
  SimTime hsdir_flag_at_;
  bool alive_ = true;
  bool denying_ = false;
  std::uint64_t cells_relayed_ = 0;
  std::map<DescriptorId, HiddenServiceDescriptor> store_;
};

}  // namespace onion::tor
