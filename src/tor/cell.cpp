#include "tor/cell.hpp"

#include <cmath>

#include "common/check.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rc4.hpp"

namespace onion::tor {

Cell make_cell(BytesView payload) {
  ONION_EXPECTS(payload.size() <= kCellSize);
  Cell cell;
  std::copy(payload.begin(), payload.end(), cell.bytes.begin());
  return cell;
}

Cell crypt_layer(BytesView hop_key, std::uint64_t seq, const Cell& cell) {
  // Per-cell keystream: RC4(HMAC(hop_key, seq)). Fresh key per sequence
  // number, so replayed positions never reuse keystream.
  const crypto::Sha256Digest cell_key = crypto::hmac_sha256(hop_key, be64(seq));
  crypto::Rc4 stream(BytesView(cell_key.data(), cell_key.size()));
  Cell out;
  for (std::size_t i = 0; i < kCellSize; ++i)
    out.bytes[i] = cell.bytes[i] ^ stream.next_byte();
  return out;
}

Cell onion_wrap(const std::vector<Bytes>& hop_keys, std::uint64_t seq,
                const Cell& cell) {
  Cell out = cell;
  for (auto it = hop_keys.rbegin(); it != hop_keys.rend(); ++it)
    out = crypt_layer(*it, seq, out);
  return out;
}

double cell_entropy(const Cell& cell) {
  std::array<std::size_t, 256> counts{};
  for (const std::uint8_t b : cell.bytes) ++counts[b];
  double entropy = 0.0;
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / kCellSize;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace onion::tor
