#include "tor/relay.hpp"

namespace onion::tor {

void Relay::store_descriptor(const DescriptorId& id,
                             const HiddenServiceDescriptor& desc) {
  if (!alive_) return;  // a retired relay accepts nothing
  store_[id] = desc;
}

std::optional<HiddenServiceDescriptor> Relay::fetch_descriptor(
    const DescriptorId& id, SimTime now) const {
  if (!alive_) return std::nullopt;  // connection refused
  if (denying_) return std::nullopt;
  const auto it = store_.find(id);
  if (it == store_.end()) return std::nullopt;
  if (now >= it->second.published_at + kDescriptorLifetime)
    return std::nullopt;
  return it->second;
}

void Relay::expire_descriptors(SimTime now) {
  for (auto it = store_.begin(); it != store_.end();) {
    if (now >= it->second.published_at + kDescriptorLifetime) {
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace onion::tor
