// Shared vocabulary types for the Tor substrate.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace onion::tor {

/// 160-bit relay fingerprint (SHA-1 of the relay identity key in real
/// Tor; here generated directly, or chosen by the adversary model).
using Fingerprint = std::array<std::uint8_t, 20>;

/// Index of a relay inside a TorNetwork.
using RelayId = std::uint32_t;

/// Index of an endpoint (a host running an onion proxy) inside a
/// TorNetwork.
using EndpointId = std::uint32_t;

constexpr RelayId kInvalidRelay = ~RelayId{0};
constexpr EndpointId kInvalidEndpoint = ~EndpointId{0};

/// Fingerprint as an owning byte buffer.
inline Bytes fingerprint_bytes(const Fingerprint& fp) {
  return Bytes(fp.begin(), fp.end());
}

/// Lexicographic ring order on fingerprints (the HSDir ring order).
inline bool fingerprint_less(const Fingerprint& a, const Fingerprint& b) {
  return a < b;
}

}  // namespace onion::tor
