// The consensus document: the hourly-published list of relays and the
// HSDir fingerprint ring (paper Figure 2). A descriptor with ID d is
// stored on the first kHsdirsPerReplica HSDirs whose fingerprints follow d
// clockwise around the ring.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "tor/descriptor.hpp"
#include "tor/types.hpp"

namespace onion::tor {

/// Consensus entries are published hourly by the directory authorities.
constexpr SimDuration kConsensusInterval = 1 * kHour;

/// Immutable snapshot of the network directory at publication time.
class Consensus {
 public:
  struct Entry {
    Fingerprint fingerprint;
    RelayId relay = kInvalidRelay;
    bool hsdir = false;
  };

  Consensus() = default;

  /// Builds a snapshot: `entries` need not be sorted; publication sorts
  /// them into ring order.
  Consensus(std::vector<Entry> entries, SimTime published_at);

  SimTime published_at() const { return published_at_; }

  /// All relays in the consensus, ring order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Relays carrying the HSDir flag, ring order.
  const std::vector<Entry>& hsdirs() const { return hsdirs_; }

  /// The kHsdirsPerReplica relays responsible for descriptor ID `id`:
  /// the first HSDirs whose fingerprints are strictly greater than `id`,
  /// wrapping around the ring. Fewer are returned only if the network has
  /// fewer HSDirs than kHsdirsPerReplica.
  std::vector<RelayId> responsible_hsdirs(const DescriptorId& id) const;

  /// All relays eligible to appear in circuits.
  std::vector<RelayId> relay_ids() const;

 private:
  std::vector<Entry> entries_;
  std::vector<Entry> hsdirs_;
  SimTime published_at_ = 0;
};

}  // namespace onion::tor
