// Cost models for the .onion address space (paper §IV-B, "Random
// probing"): 16 base-32 characters give 32^16 = 2^80 possible names, so
// scanning for listeners — routine in IPv4 — is arithmetic nonsense
// here, and even crafting a *prefix* is expensive (the paper cites
// Shallot: ~25 days for 8 chosen leading characters).
//
// These are closed-form models, not measurements: they exist so benches
// and tests can print the paper's infeasibility argument with real
// numbers attached.
#pragma once

#include <cstdint>

namespace onion::tor {

/// Characters in a (v2-era) .onion label.
constexpr int kOnionAddressChars = 16;

/// log2 of the address-space size (32^16 = 2^80).
constexpr double kOnionAddressSpaceBits = 80.0;

/// The paper's Shallot calibration: 8 chosen leading characters take
/// about 25 days, fixing the implied key-generation rate.
constexpr double kShallotPrefixChars = 8.0;
constexpr double kShallotPrefixDays = 25.0;

/// Keys/second implied by the Shallot data point (32^8 keys / 25 days).
double implied_keygen_rate_per_second();

/// Expected random probes before hitting *any* of `population` listening
/// addresses (geometric distribution mean: 32^16 / population).
double expected_probes_to_find_bot(double population);

/// Expected years of scanning at `probes_per_second` before the first
/// hit among `population` bots.
double expected_years_to_find_bot(double population,
                                  double probes_per_second);

/// Expected days to brute-force a vanity prefix of `prefix_chars`
/// base-32 characters at `keys_per_second` (defaults to the Shallot
/// rate, so vanity_prefix_days(8) ~= 25).
double vanity_prefix_days(int prefix_chars, double keys_per_second = 0.0);

}  // namespace onion::tor
