// Fixed-size cells and layered (onion) encryption. Tor moves all data in
// 512-byte cells encrypted in as many layers as the circuit has hops; each
// relay peels exactly one layer, so no relay sees both plaintext and the
// full path (paper Section III). The per-layer cipher is simulation-grade
// (RC4 keyed per cell by HMAC of the hop key and cell sequence) — the
// tests verify the structural property: intermediate hops observe only
// high-entropy bytes, and peeling in path order restores the plaintext.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace onion::tor {

/// Tor's fixed cell size in bytes.
constexpr std::size_t kCellSize = 512;

/// One fixed-size cell.
struct Cell {
  std::array<std::uint8_t, kCellSize> bytes{};

  bool operator==(const Cell&) const = default;
};

/// Builds a cell from at most kCellSize payload bytes; the remainder is
/// zero-filled (callers that need full indistinguishability pass
/// uniform-encoded payloads, which are exactly kCellSize).
Cell make_cell(BytesView payload);

/// Applies one encryption layer under `hop_key` for cell sequence number
/// `seq`. The cipher is an XOR stream, so the same call removes the layer:
/// crypt_layer(k, s, crypt_layer(k, s, c)) == c.
Cell crypt_layer(BytesView hop_key, std::uint64_t seq, const Cell& cell);

/// Onion-encrypts: applies layers for hops last..first so that the first
/// relay peels the outermost layer.
Cell onion_wrap(const std::vector<Bytes>& hop_keys, std::uint64_t seq,
                const Cell& cell);

/// Shannon entropy (bits/byte) of a cell — used by tests to confirm
/// relayed cells look uniform (close to 8 bits/byte).
double cell_entropy(const Cell& cell);

}  // namespace onion::tor
