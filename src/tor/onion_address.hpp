// .onion addresses (paper Section III): the service identifier is the
// first 10 bytes (80 bits) of the SHA-1 digest of the service's RSA
// public key, and the hostname is its base32 encoding — exactly the v2
// hidden-service scheme the paper describes.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/simrsa.hpp"

namespace onion::tor {

/// 80-bit hidden-service identifier with value semantics; hashable and
/// ordered so it can key peer tables and HSDir stores.
class OnionAddress {
 public:
  using Identifier = std::array<std::uint8_t, 10>;

  OnionAddress() = default;

  /// Wraps a raw identifier (tests and synthetic-population helpers).
  explicit OnionAddress(const Identifier& id) : id_(id) {}

  /// Derives the address of a service key: first 10 bytes of
  /// SHA-1(serialized public key).
  static OnionAddress from_public_key(const crypto::RsaPublicKey& pub);

  /// Parses a 16-character base32 hostname (with or without the ".onion"
  /// suffix); throws std::invalid_argument on malformed input.
  static OnionAddress from_hostname(const std::string& hostname);

  /// The 80-bit identifier.
  const Identifier& identifier() const { return id_; }

  /// Identifier as an owning buffer (for hashing into descriptor IDs).
  Bytes identifier_bytes() const { return Bytes(id_.begin(), id_.end()); }

  /// "abcdefghij234567.onion".
  std::string hostname() const;

  auto operator<=>(const OnionAddress&) const = default;

 private:
  Identifier id_{};
};

/// Hash functor so OnionAddress can key unordered containers.
struct OnionAddressHash {
  std::size_t operator()(const OnionAddress& a) const {
    std::size_t h = 1469598103934665603ULL;
    for (const std::uint8_t b : a.identifier()) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace onion::tor
